//! The unified training entry point: a [`TrainSpec`] builder mirroring
//! the runner's `RunSpec` idiom (dataset → params → threads → obs →
//! [`TrainSpec::fit`]).
//!
//! Two interchangeable training methods sit behind the same spec:
//!
//! * [`TrainMethod::Histogram`] (default) — the binned, multi-threaded
//!   trainer of [`crate::hist`]; bit-identical at any thread count;
//! * [`TrainMethod::Reference`] — the seed's exact-greedy scan
//!   ([`crate::GbtModel::train_reference`]), kept as the equivalence
//!   oracle.
//!
//! ```
//! use boreas_gbt::{Dataset, GbtParams, TrainSpec};
//!
//! let mut d = Dataset::new(vec!["x".into()]);
//! for i in 0..100 {
//!     let x = i as f64 / 10.0;
//!     d.push_row(&[x], 2.0 * x, 0)?;
//! }
//! let report = TrainSpec::new(&d)
//!     .params(GbtParams::default().with_estimators(20))
//!     .threads(2)
//!     .fit()?;
//! assert!((report.model.predict(&[5.0]) - 10.0).abs() < 0.5);
//! assert_eq!(report.stats.rows, 100);
//! # Ok::<(), common::Error>(())
//! ```

use crate::binned::BinnedDataset;
use crate::dataset::Dataset;
use crate::hist;
use crate::model::GbtModel;
use crate::params::GbtParams;
use common::{Error, Result};
use std::time::Instant;

/// Which trainer [`TrainSpec::fit`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainMethod {
    /// Binned histogram training with deterministic parallel reduction.
    Histogram,
    /// The exact-greedy presorted scan (single-threaded oracle).
    Reference,
}

impl TrainMethod {
    /// Stable lowercase name (used in benchmark artifacts).
    pub fn as_str(self) -> &'static str {
        match self {
            TrainMethod::Histogram => "histogram",
            TrainMethod::Reference => "reference",
        }
    }
}

/// What one [`TrainSpec::fit`] run did, beside the model itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainStats {
    /// Training rows.
    pub rows: usize,
    /// Feature columns.
    pub features: usize,
    /// Worker threads actually used (after `0 = auto` resolution).
    pub threads: usize,
    /// The trainer that ran.
    pub method: TrainMethod,
    /// Trees grown.
    pub trees: usize,
    /// Sum of per-feature bin counts (0 for the reference path).
    pub total_bins: usize,
    /// Nanoseconds spent quantising the dataset (0 for reference).
    pub bin_ns: u64,
    /// Nanoseconds spent boosting.
    pub grow_ns: u64,
}

/// A trained model plus its training statistics.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// The trained ensemble.
    pub model: GbtModel,
    /// How training went.
    pub stats: TrainStats,
}

/// Builder for one training run.
///
/// Defaults: [`GbtParams::default`], histogram method, automatic thread
/// count, observability off.
pub struct TrainSpec<'a> {
    data: &'a Dataset,
    params: GbtParams,
    threads: usize,
    method: TrainMethod,
    obs: obs::Obs,
}

impl<'a> TrainSpec<'a> {
    /// Starts a spec over a training dataset.
    pub fn new(data: &'a Dataset) -> TrainSpec<'a> {
        TrainSpec {
            data,
            params: GbtParams::default(),
            threads: 0,
            method: TrainMethod::Histogram,
            obs: obs::Obs::default(),
        }
    }

    /// Sets the hyper-parameters.
    #[must_use]
    pub fn params(mut self, params: GbtParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the worker thread count; `0` (the default) uses the
    /// machine's available parallelism. The trained model is
    /// bit-identical for every value.
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Selects the trainer.
    #[must_use]
    pub fn method(mut self, method: TrainMethod) -> Self {
        self.method = method;
        self
    }

    /// Attaches an observability bundle: `fit` emits `train_*` counters
    /// and `train.bin` / `train.grow` spans through it.
    #[must_use]
    pub fn observe(mut self, obs: &obs::Obs) -> Self {
        self.obs = obs.clone();
        self
    }

    /// Runs training.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyDataset`] for an empty dataset or
    /// [`Error::InvalidConfig`] for invalid hyper-parameters.
    pub fn fit(&self) -> Result<TrainReport> {
        self.params.validate()?;
        if self.data.is_empty() {
            return Err(Error::EmptyDataset("gbt training set"));
        }
        let threads = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        };

        let (model, total_bins, bin_ns, grow_ns) = match self.method {
            TrainMethod::Histogram => {
                let t0 = Instant::now();
                let binned = BinnedDataset::from_dataset(self.data, self.params.max_bins)?;
                let bin_ns = t0.elapsed().as_nanos() as u64;
                let t1 = Instant::now();
                let (base_score, trees) = hist::boost(&binned, &self.params, threads);
                let grow_ns = t1.elapsed().as_nanos() as u64;
                let model = GbtModel::from_parts(
                    base_score,
                    trees,
                    self.params,
                    self.data.feature_names().to_vec(),
                );
                (model, binned.total_bins(), bin_ns, grow_ns)
            }
            TrainMethod::Reference => {
                let t0 = Instant::now();
                let model = GbtModel::train_reference(self.data, &self.params)?;
                (model, 0, 0, t0.elapsed().as_nanos() as u64)
            }
        };

        let stats = TrainStats {
            rows: self.data.len(),
            features: self.data.num_features(),
            threads,
            method: self.method,
            trees: model.num_trees(),
            total_bins,
            bin_ns,
            grow_ns,
        };
        self.emit(&stats);
        Ok(TrainReport { model, stats })
    }

    fn emit(&self, stats: &TrainStats) {
        if !self.obs.is_enabled() {
            return;
        }
        self.obs
            .metrics
            .counter("train_runs_total", "GBT training runs")
            .inc();
        self.obs
            .metrics
            .counter("train_rows_total", "Rows consumed by GBT training")
            .add(stats.rows as u64);
        self.obs
            .metrics
            .counter("train_trees_total", "Trees grown by GBT training")
            .add(stats.trees as u64);
        if stats.bin_ns > 0 {
            self.obs.tracer.record("train.bin", stats.bin_ns);
        }
        self.obs.tracer.record("train.grow", stats.grow_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(n: usize) -> Dataset {
        let mut d = Dataset::new(vec!["x0".into(), "x1".into()]);
        for i in 0..n {
            let x0 = ((i * 37) % 113) as f64 / 113.0;
            let x1 = ((i * 91) % 71) as f64 / 71.0;
            d.push_row(&[x0, x1], (3.0 * x0).sin() + x1 * x1, 0)
                .unwrap();
        }
        d
    }

    #[test]
    fn histogram_fit_produces_a_usable_model() {
        let d = wave(500);
        let report = TrainSpec::new(&d)
            .params(GbtParams::default().with_estimators(50))
            .threads(1)
            .fit()
            .unwrap();
        assert!(report.model.mse_on(&d) < 0.01);
        assert_eq!(report.stats.method, TrainMethod::Histogram);
        assert_eq!(report.stats.rows, 500);
        assert_eq!(report.stats.features, 2);
        assert_eq!(report.stats.trees, 50);
        assert!(report.stats.total_bins > 0);
        assert_eq!(report.stats.threads, 1);
    }

    #[test]
    fn reference_method_matches_train_reference() {
        let d = wave(300);
        let params = GbtParams::default().with_estimators(10);
        let via_spec = TrainSpec::new(&d)
            .params(params)
            .method(TrainMethod::Reference)
            .fit()
            .unwrap();
        let direct = GbtModel::train_reference(&d, &params).unwrap();
        assert_eq!(via_spec.model, direct);
        assert_eq!(via_spec.stats.total_bins, 0);
        assert_eq!(via_spec.stats.bin_ns, 0);
    }

    #[test]
    fn fit_is_thread_count_invariant() {
        let d = wave(2000);
        let params = GbtParams::default().with_estimators(15);
        let spec = |t| {
            TrainSpec::new(&d)
                .params(params)
                .threads(t)
                .fit()
                .unwrap()
                .model
        };
        let one = spec(1);
        assert_eq!(one, spec(2));
        assert_eq!(one, spec(4));
        assert_eq!(one, spec(0)); // auto resolves to some count; same model
    }

    #[test]
    fn histogram_agrees_with_reference_on_prebinned_data() {
        // Every feature has < 256 distinct values, so the histogram path
        // sees the exact candidate-split space. Predictions agree to
        // float-association noise.
        let d = wave(600);
        let params = GbtParams::default().with_estimators(30);
        let hist = TrainSpec::new(&d).params(params).threads(1).fit().unwrap();
        let exact = GbtModel::train_reference(&d, &params).unwrap();
        for i in (0..d.len()).step_by(7) {
            let row = d.row(i);
            let (a, b) = (hist.model.predict(&row), exact.predict(&row));
            assert!((a - b).abs() < 1e-9, "row {i}: hist {a} vs exact {b}");
        }
    }

    #[test]
    fn obs_hooks_record_training() {
        let d = wave(200);
        let obs = obs::Obs::new();
        TrainSpec::new(&d)
            .params(GbtParams::default().with_estimators(5))
            .observe(&obs)
            .fit()
            .unwrap();
        let snap = obs.metrics.snapshot();
        let val = |name: &str| match snap.family(name).unwrap().value {
            obs::MetricValue::Counter(v) => v,
            ref other => panic!("{name}: {other:?}"),
        };
        assert_eq!(val("train_runs_total"), 1);
        assert_eq!(val("train_rows_total"), 200);
        assert_eq!(val("train_trees_total"), 5);
        assert!(obs.tracer.stats().get("train.grow").is_some());
    }

    #[test]
    fn invalid_params_and_empty_data_error() {
        let d = wave(10);
        assert!(TrainSpec::new(&d)
            .params(GbtParams::default().with_estimators(0))
            .fit()
            .is_err());
        let empty = Dataset::new(vec!["x".into()]);
        assert!(matches!(
            TrainSpec::new(&empty).fit(),
            Err(Error::EmptyDataset(_))
        ));
    }
}
