//! Hotspot event detection and classification.
//!
//! HotGauge's contribution (beyond the severity metric itself) includes
//! "automatically classifying and detecting hotspots". This module scans
//! a step-record trace for *episodes* — maximal runs of steps whose
//! severity stays at or above a threshold — and classifies each by the
//! functional unit it sits on, its duration and how fast it formed
//! (advanced hotspots are the fast, localized ones).

use crate::pipeline::StepRecord;
use common::time::SimTime;
use floorplan::{Floorplan, UnitKind};
use serde::{Deserialize, Serialize};

/// How quickly a hotspot episode formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HotspotClass {
    /// Severity went from below `0.5 × threshold` to the threshold within
    /// one millisecond — faster than a 960 µs sensor/control loop can
    /// react. The paper's *advanced hotspot*.
    Advanced,
    /// A conventional, slowly developing hotspot.
    Gradual,
}

/// One detected hotspot episode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HotspotEvent {
    /// First step at/above the threshold.
    pub start: SimTime,
    /// Last step at/above the threshold.
    pub end: SimTime,
    /// Number of steps in the episode.
    pub steps: usize,
    /// Peak severity reached during the episode.
    pub peak_severity: f64,
    /// The functional unit under the most severe cell at the peak
    /// (`None` if the location fell on uncore filler).
    pub unit: Option<UnitKind>,
    /// Formation-speed classification.
    pub class: HotspotClass,
}

impl HotspotEvent {
    /// Episode duration in milliseconds (inclusive of both endpoints).
    pub fn duration_ms(&self) -> f64 {
        (self.end.as_micros() - self.start.as_micros() + common::time::STEP_MICROS) as f64 / 1000.0
    }
}

/// Scans a trace for hotspot episodes with severity ≥ `threshold`.
///
/// `plan` resolves episode locations to functional units. Records must be
/// in time order (as produced by the pipeline).
///
/// # Panics
///
/// Panics if `threshold` is not in `(0, 1]`.
pub fn detect_events(
    records: &[StepRecord],
    plan: &Floorplan,
    threshold: f64,
) -> Vec<HotspotEvent> {
    assert!(
        threshold > 0.0 && threshold <= 1.0,
        "threshold must be in (0, 1], got {threshold}"
    );
    let mut events = Vec::new();
    let mut current: Option<(usize, usize, f64, (f64, f64))> = None; // (start, end, peak, peak_xy)
    for (i, r) in records.iter().enumerate() {
        let sev = r.max_severity.value();
        if sev >= threshold {
            match &mut current {
                Some((_, end, peak, peak_xy)) => {
                    *end = i;
                    if sev > *peak {
                        *peak = sev;
                        *peak_xy = r.hotspot_xy;
                    }
                }
                None => current = Some((i, i, sev, r.hotspot_xy)),
            }
        } else if let Some((start, end, peak, peak_xy)) = current.take() {
            events.push(finish_event(
                records, plan, threshold, start, end, peak, peak_xy,
            ));
        }
    }
    if let Some((start, end, peak, peak_xy)) = current {
        events.push(finish_event(
            records, plan, threshold, start, end, peak, peak_xy,
        ));
    }
    events
}

fn finish_event(
    records: &[StepRecord],
    plan: &Floorplan,
    threshold: f64,
    start: usize,
    end: usize,
    peak: f64,
    peak_xy: (f64, f64),
) -> HotspotEvent {
    // Walk backwards from the onset to find when severity was last below
    // half the threshold; a rise within 1 ms classifies as advanced.
    let mut rise_steps = None;
    for back in (0..start).rev() {
        if records[back].max_severity.value() < 0.5 * threshold {
            rise_steps = Some(start - back);
            break;
        }
    }
    let class = match rise_steps {
        // 1 ms = 12.5 steps of 80 us.
        Some(steps) if steps <= 12 => HotspotClass::Advanced,
        Some(_) => HotspotClass::Gradual,
        // Severity was never below half-threshold since t=0: for short
        // prefixes (chip started hot immediately) treat as advanced.
        None => {
            if start <= 12 {
                HotspotClass::Advanced
            } else {
                HotspotClass::Gradual
            }
        }
    };
    HotspotEvent {
        start: records[start].time,
        end: records[end].time,
        steps: end - start + 1,
        peak_severity: peak,
        unit: plan.unit_at(peak_xy.0, peak_xy.1).map(|u| u.kind),
        class,
    }
}

/// Summary counts of a trace's hotspot behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventSummary {
    /// Episodes found.
    pub count: usize,
    /// Episodes classified as advanced.
    pub advanced: usize,
    /// Total steps spent at/above the threshold.
    pub total_steps: usize,
    /// Longest single episode, in steps.
    pub longest_steps: usize,
}

/// Summarises [`detect_events`] output.
pub fn summarize(events: &[HotspotEvent]) -> EventSummary {
    EventSummary {
        count: events.len(),
        advanced: events
            .iter()
            .filter(|e| e.class == HotspotClass::Advanced)
            .count(),
        total_steps: events.iter().map(|e| e.steps).sum(),
        longest_steps: events.iter().map(|e| e.steps).max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use common::units::{GigaHertz, Volts};
    use workloads::WorkloadSpec;

    fn hot_trace() -> (Vec<StepRecord>, Floorplan) {
        let mut cfg = PipelineConfig::paper();
        cfg.grid = floorplan::GridSpec::new(16, 12).unwrap();
        let p = cfg.build().unwrap();
        let spec = WorkloadSpec::by_name("gromacs").unwrap();
        let out = p
            .run_fixed(&spec, GigaHertz::new(4.5), Volts::new(1.15), 120)
            .unwrap();
        (out.records, p.floorplan().clone())
    }

    #[test]
    fn hot_run_produces_events_on_a_hot_unit() {
        let (records, plan) = hot_trace();
        let events = detect_events(&records, &plan, 0.9);
        assert!(
            !events.is_empty(),
            "gromacs at 4.5 GHz must produce hotspots"
        );
        let summary = summarize(&events);
        assert!(summary.total_steps > 0);
        assert!(summary.longest_steps <= records.len());
        // Hotspots live on real units, not filler.
        for e in &events {
            assert!(e.unit.is_some());
            assert!(e.peak_severity >= 0.9);
            assert!(e.duration_ms() > 0.0);
        }
    }

    #[test]
    fn cold_run_produces_no_events() {
        let mut cfg = PipelineConfig::paper();
        cfg.grid = floorplan::GridSpec::new(16, 12).unwrap();
        let p = cfg.build().unwrap();
        let spec = WorkloadSpec::by_name("omnetpp").unwrap();
        let out = p
            .run_fixed(&spec, GigaHertz::new(2.0), Volts::new(0.64), 60)
            .unwrap();
        let events = detect_events(&out.records, p.floorplan(), 0.9);
        assert!(events.is_empty());
        assert_eq!(summarize(&events).count, 0);
    }

    #[test]
    fn episodes_are_maximal_runs() {
        let (records, plan) = hot_trace();
        let events = detect_events(&records, &plan, 0.95);
        // Episodes are disjoint and ordered.
        for pair in events.windows(2) {
            assert!(pair[0].end < pair[1].start);
        }
        // Total steps at/above the threshold matches a direct count.
        let direct = records
            .iter()
            .filter(|r| r.max_severity.value() >= 0.95)
            .count();
        assert_eq!(summarize(&events).total_steps, direct);
    }

    #[test]
    fn spiky_workload_events_are_advanced() {
        let (records, plan) = hot_trace();
        let events = detect_events(&records, &plan, 0.9);
        let summary = summarize(&events);
        assert!(
            summary.advanced > 0,
            "gromacs's fast hotspots should classify as advanced"
        );
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn invalid_threshold_panics() {
        let (records, plan) = hot_trace();
        detect_events(&records, &plan, 1.5);
    }
}
