//! Fig. 8: dynamic closed-loop traces of every unseen test workload
//! under TH-00 and Boreas (ML05) for 150 timesteps (12 ms).
//!
//! Paper shape: Boreas runs at the same frequency or one-two 250 MHz
//! steps above the thermal model (except hmmer), and no test workload
//! ever reaches severity 1.0 under either controller.

use boreas_bench::experiments::{Experiment, LOOP_STEPS};
use boreas_core::{BoreasController, ClosedLoopRunner, Controller, ThermalController, VfTable};
use workloads::WorkloadSpec;

fn main() {
    let exp = Experiment::paper().expect("paper config");
    let thresholds = exp.trained_thresholds().expect("trained thresholds");
    let (model, features) = exp.boreas_model().expect("model");
    let runner = ClosedLoopRunner::new(&exp.pipeline);

    let mut any_incursion = false;
    for w in WorkloadSpec::test_set() {
        println!("== {}", w.name);
        let mut th: Box<dyn Controller> =
            Box::new(ThermalController::from_thresholds(thresholds.clone(), 0.0));
        let mut ml: Box<dyn Controller> = Box::new(
            BoreasController::try_new(model.clone(), features.clone(), 0.05)
                .expect("schema matches"),
        );
        let mut avg = Vec::new();
        for c in [&mut th, &mut ml] {
            let out = runner
                .run(&w, c.as_mut(), LOOP_STEPS, VfTable::BASELINE_INDEX)
                .expect("closed loop");
            println!(
                "  {:<6} avg {:.3} GHz, peak severity {}, incursions {}",
                out.controller,
                out.avg_frequency.value(),
                out.peak_severity,
                out.incursions
            );
            print!("    f(GHz):  ");
            for chunk in out.records.chunks(12) {
                print!("{:.2} ", chunk.last().expect("non-empty").frequency.value());
            }
            println!();
            print!("    max sev: ");
            for chunk in out.records.chunks(12) {
                let s = chunk
                    .iter()
                    .map(|r| r.max_severity.value())
                    .fold(0.0f64, f64::max);
                print!("{s:.2} ");
            }
            println!();
            any_incursion |= out.incursions > 0;
            avg.push(out.avg_frequency.value());
        }
        println!(
            "  Boreas vs TH-00: {:+.1}%\n",
            (avg[1] / avg[0] - 1.0) * 100.0
        );
    }
    println!(
        "any incursion across all test workloads and both controllers: {} (paper: none)",
        if any_incursion { "YES (!)" } else { "no" }
    );
}
