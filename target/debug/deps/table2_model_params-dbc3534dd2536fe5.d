/root/repo/target/debug/deps/table2_model_params-dbc3534dd2536fe5.d: crates/bench/src/bin/table2_model_params.rs

/root/repo/target/debug/deps/table2_model_params-dbc3534dd2536fe5: crates/bench/src/bin/table2_model_params.rs

crates/bench/src/bin/table2_model_params.rs:
