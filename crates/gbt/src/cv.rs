//! Cross-validation and grid search (§IV-A "Grid search CV").
//!
//! The paper's *modified Leave-One-Out Cross-Validation*: one
//! **application** (group) is held out per fold; the model trains on the
//! remaining applications and validates on every instance of the held-out
//! one. Grid search evaluates a set of hyper-parameter candidates by this
//! CV and ranks them by mean validation MSE.

use crate::dataset::Dataset;
use crate::model::GbtModel;
use crate::params::GbtParams;
use common::{Error, Result};
use serde::{Deserialize, Serialize};

/// Result of one cross-validation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CvOutcome {
    /// Per-fold validation MSE, in `distinct_groups()` order.
    pub fold_mse: Vec<f64>,
    /// Mean of the fold MSEs.
    pub mean_mse: f64,
    /// Population standard deviation of the fold MSEs.
    pub std_mse: f64,
}

/// One grid-search candidate with its CV outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridResult {
    /// The hyper-parameters evaluated.
    pub params: GbtParams,
    /// The cross-validation outcome.
    pub cv: CvOutcome,
}

/// Leave-one-group-out cross-validation of `params` on `data`.
///
/// # Errors
///
/// Returns [`Error::EmptyDataset`] if `data` has fewer than two groups
/// (no fold would have both train and validation rows), and propagates
/// training errors.
pub fn leave_one_group_out(data: &Dataset, params: &GbtParams) -> Result<CvOutcome> {
    let groups = data.distinct_groups();
    if groups.len() < 2 {
        return Err(Error::EmptyDataset("LOOCV needs at least two groups"));
    }
    let mut fold_mse = Vec::with_capacity(groups.len());
    for &g in &groups {
        let (val, train) = data.split_by_group(g);
        let model = GbtModel::train(&train, params)?;
        fold_mse.push(model.mse_on(&val));
    }
    let mean_mse = common::stats::mean(&fold_mse);
    let std_mse = common::stats::std_dev(&fold_mse);
    Ok(CvOutcome {
        fold_mse,
        mean_mse,
        std_mse,
    })
}

/// Evaluates every candidate by [`leave_one_group_out`] and returns the
/// results sorted by ascending mean MSE (best first).
///
/// # Errors
///
/// Returns [`Error::EmptyDataset`] for an empty candidate list and
/// propagates CV errors.
pub fn grid_search(data: &Dataset, candidates: &[GbtParams]) -> Result<Vec<GridResult>> {
    if candidates.is_empty() {
        return Err(Error::EmptyDataset("grid-search candidates"));
    }
    let mut results = Vec::with_capacity(candidates.len());
    for params in candidates {
        let cv = leave_one_group_out(data, params)?;
        results.push(GridResult {
            params: *params,
            cv,
        });
    }
    results.sort_by(|a, b| {
        a.cv.mean_mse
            .partial_cmp(&b.cv.mean_mse)
            .expect("finite MSE")
    });
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shared nonlinear function sampled into several "applications"
    /// (groups) with disjoint input regions, like workloads with
    /// different behaviours drawn from common physics.
    fn grouped_data() -> Dataset {
        let mut d = Dataset::new(vec!["x".into(), "z".into()]);
        for g in 0..5u32 {
            for i in 0..150 {
                let x = g as f64 + i as f64 / 150.0;
                let z = (i % 13) as f64;
                let y = (0.7 * x).sin() + 0.05 * z;
                d.push_row(&[x, z], y, g).unwrap();
            }
        }
        d
    }

    #[test]
    fn cv_produces_one_fold_per_group() {
        let d = grouped_data();
        let out = leave_one_group_out(&d, &GbtParams::default().with_estimators(30)).unwrap();
        assert_eq!(out.fold_mse.len(), 5);
        assert!(out.mean_mse.is_finite() && out.mean_mse >= 0.0);
        assert!(out.std_mse >= 0.0);
        let mean = common::stats::mean(&out.fold_mse);
        assert!((mean - out.mean_mse).abs() < 1e-12);
    }

    #[test]
    fn cv_needs_two_groups() {
        let mut d = Dataset::new(vec!["x".into()]);
        for i in 0..10 {
            d.push_row(&[i as f64], i as f64, 0).unwrap();
        }
        assert!(leave_one_group_out(&d, &GbtParams::default()).is_err());
    }

    #[test]
    fn grid_search_ranks_by_mean_mse() {
        let d = grouped_data();
        let candidates = vec![
            GbtParams::default().with_estimators(1).with_depth(1),
            GbtParams::default().with_estimators(40).with_depth(3),
            GbtParams::default().with_estimators(10).with_depth(2),
        ];
        let results = grid_search(&d, &candidates).unwrap();
        assert_eq!(results.len(), 3);
        for pair in results.windows(2) {
            assert!(pair[0].cv.mean_mse <= pair[1].cv.mean_mse);
        }
        // A single depth-1 tree cannot win against a real ensemble here.
        assert!(results[0].params.n_estimators > 1);
    }

    #[test]
    fn grid_search_rejects_empty_grid() {
        let d = grouped_data();
        assert!(grid_search(&d, &[]).is_err());
    }
}
