/root/repo/target/debug/deps/calibrate-a51203c8c5b46df7.d: crates/bench/src/bin/calibrate.rs Cargo.toml

/root/repo/target/debug/deps/libcalibrate-a51203c8c5b46df7.rmeta: crates/bench/src/bin/calibrate.rs Cargo.toml

crates/bench/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
