/root/repo/target/release/deps/fault_campaign-bc6f824e67111cee.d: crates/bench/src/bin/fault_campaign.rs

/root/repo/target/release/deps/fault_campaign-bc6f824e67111cee: crates/bench/src/bin/fault_campaign.rs

crates/bench/src/bin/fault_campaign.rs:
