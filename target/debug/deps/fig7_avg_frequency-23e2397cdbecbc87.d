/root/repo/target/debug/deps/fig7_avg_frequency-23e2397cdbecbc87.d: crates/bench/src/bin/fig7_avg_frequency.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_avg_frequency-23e2397cdbecbc87.rmeta: crates/bench/src/bin/fig7_avg_frequency.rs Cargo.toml

crates/bench/src/bin/fig7_avg_frequency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
