//! Golden-file pin of the serving wire protocol.
//!
//! The canonical encoding of a [`TelemetryFrame`] and both [`Response`]
//! arms is committed under `tests/golden/` as the exact framed bytes
//! (4-byte big-endian length prefix + canonical JSON body). Any codec
//! change that alters bytes on the wire fails here first and must bump
//! the protocol deliberately.
//!
//! Regenerate after an intentional change with
//! `GOLDEN_BLESS=1 cargo test -p boreas-serve --test protocol_golden`.

use boreas_core::{ControlDecision, ControlDiagnostics, ControlStage, Decision, TelemetryFrame};
use boreas_serve::protocol::{
    decode_frame, decode_response, encode_frame, encode_response, read_frame, write_frame,
    Incoming, Response,
};
use common::time::SimTime;
use common::units::{Celsius, GigaHertz, Volts, Watts};
use hotgauge::{Severity, StepRecord};
use perfsim::{CounterId, IntervalCounters};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// A fully deterministic frame exercising the awkward corners of the
/// number grammar: bit-exact fractions, subnormals, negative zero and
/// a sequence number above 2^53.
fn golden_frame() -> TelemetryFrame {
    let mut counters = IntervalCounters::zeroed();
    for (i, id) in CounterId::ALL.iter().enumerate() {
        counters.set(*id, (i as f64) / 3.0);
    }
    counters.set(CounterId::ALL[0], 0.1);
    counters.set(CounterId::ALL[1], 5e-324); // smallest subnormal
    counters.set(CounterId::ALL[2], -0.0);
    counters.set(CounterId::ALL[3], f64::MAX);
    let record = StepRecord {
        time: SimTime::from_micros(123_456_789),
        counters,
        sensor_temps: vec![Celsius::new(61.25), Celsius::new(59.75), Celsius::new(-3.5)],
        max_temp: Celsius::new(83.12_f64.next_up()),
        max_severity: Severity::new(0.9375),
        max_severity_raw: 1.734_151_269_874_312_3,
        hotspot_xy: (std::f64::consts::PI, std::f64::consts::E),
        total_power: Watts::new(118.374),
        frequency: GigaHertz::new(4.25),
        voltage: Volts::new(1.0125),
    };
    TelemetryFrame::new(7, (1u64 << 53) + 1, record)
}

fn golden_decision() -> Response {
    Response::Decision {
        shard: 7,
        seq: (1u64 << 53) + 12,
        decision: ControlDecision {
            interval: 41,
            from_idx: 7,
            to_idx: 8,
            decision: Decision::StepUp,
            frequency_ghz: 4.0,
            voltage_v: 0.975,
            diagnostics: ControlDiagnostics {
                predicted_severity: Some(0.812_345_678_901_234_5),
                guardband: Some(0.05),
                stage: Some(ControlStage::Primary),
                quality: Some(1.0),
            },
        },
    }
}

fn golden_rejected() -> Response {
    Response::Rejected {
        shard: 3,
        seq: 99,
        reason: "shard queue full".to_string(),
    }
}

/// Frames `body` exactly as the daemon would put it on the wire.
fn framed(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    write_frame(&mut out, body).unwrap();
    out
}

fn check_golden(name: &str, wire: &[u8]) {
    let path = golden_dir().join(name);
    if std::env::var("GOLDEN_BLESS").is_ok() {
        std::fs::write(&path, wire).unwrap();
    }
    let want = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with GOLDEN_BLESS=1",
            name
        )
    });
    assert_eq!(
        wire,
        want.as_slice(),
        "{name}: wire bytes drifted from the committed golden encoding"
    );
}

#[test]
fn telemetry_frame_bytes_match_golden() {
    let frame = golden_frame();
    let wire = framed(&encode_frame(&frame).unwrap());
    check_golden("frame_v1.bin", &wire);

    // The committed bytes decode back to the identical frame, through
    // the same read path the daemon uses.
    let mut cursor = std::io::Cursor::new(wire);
    match read_frame(&mut cursor).unwrap() {
        Incoming::Frame(body) => {
            let back = decode_frame(&body).unwrap();
            assert_eq!(back, frame);
            assert_eq!(
                back.record.max_severity_raw.to_bits(),
                frame.record.max_severity_raw.to_bits()
            );
            assert_eq!(
                back.record.counters.as_slice()[1].to_bits(),
                5e-324f64.to_bits()
            );
            assert_eq!(
                back.record.counters.as_slice()[2].to_bits(),
                (-0.0f64).to_bits()
            );
            assert_eq!(back.seq, (1u64 << 53) + 1, "u64 beyond 2^53 survives");
        }
        other => panic!("expected a frame, got {other:?}"),
    }
}

#[test]
fn decision_response_bytes_match_golden() {
    let resp = golden_decision();
    let wire = framed(&encode_response(&resp).unwrap());
    check_golden("response_decision_v1.bin", &wire);
    let mut cursor = std::io::Cursor::new(wire);
    match read_frame(&mut cursor).unwrap() {
        Incoming::Frame(body) => assert_eq!(decode_response(&body).unwrap(), resp),
        other => panic!("expected a frame, got {other:?}"),
    }
}

#[test]
fn rejected_response_bytes_match_golden() {
    let resp = golden_rejected();
    let wire = framed(&encode_response(&resp).unwrap());
    check_golden("response_rejected_v1.bin", &wire);
    let mut cursor = std::io::Cursor::new(wire);
    match read_frame(&mut cursor).unwrap() {
        Incoming::Frame(body) => assert_eq!(decode_response(&body).unwrap(), resp),
        other => panic!("expected a frame, got {other:?}"),
    }
}
