//! Fig. 7: average frequency of every model on the unseen test
//! workloads, normalised to the 3.75 GHz baseline.
//!
//! Paper shape: TH-00 ≈ +5.7 % over baseline; ML05 ≈ TH-00 + 4.5 % with
//! zero incursions; ML00 fastest but unreliable; ML10 safe but barely
//! better than TH (and worse on hmmer).
//!
//! The workload × controller matrix is one [`engine::Scenario`]; the
//! [`engine::Session`] runs it work-stealing and memoises every cell.

use boreas_bench::experiments::{Experiment, LOOP_STEPS};
use boreas_bench::Reporting;
use boreas_core::VfTable;
use engine::{ControllerSpec, Scenario};
use workloads::WorkloadSpec;

fn main() {
    let reporting = Reporting::from_args();
    let exp = Experiment::paper()
        .expect("paper config")
        .observe(&reporting.obs);
    let thresholds = exp.trained_thresholds().expect("trained thresholds");
    let (model, features) = exp.boreas_model().expect("boreas model");
    let tests = WorkloadSpec::test_set();

    // Column order of the Fig. 7 table; the trailing baseline row is a
    // sanity check, not a column.
    let controllers = vec![
        ControllerSpec::thermal(thresholds, 0.0),
        ControllerSpec::ml(model.clone(), &features, 0.0),
        ControllerSpec::ml(model.clone(), &features, 0.05),
        ControllerSpec::ml(model, &features, 0.10),
        ControllerSpec::global(VfTable::BASELINE_INDEX),
    ];
    let labels: Vec<String> = controllers.iter().map(ControllerSpec::label).collect();
    let n_cols = labels.len() - 1; // baseline column is hidden

    let scenario = Scenario::closed_loop(
        "fig7-avg-frequency",
        tests.clone(),
        exp.vf.clone(),
        LOOP_STEPS,
        controllers,
    );
    let session = exp.session().expect("session");
    let report = reporting
        .execute(&session, &scenario)
        .expect("closed-loop matrix");
    let rows: Vec<_> = report.loop_runs().collect();

    print!("{:<12}", "workload");
    for label in labels.iter().take(n_cols) {
        print!(" {:>8}", label);
    }
    println!("   (normalised avg frequency; * = incursions)");

    let mut sums = vec![0.0; n_cols];
    let mut incur = vec![0usize; n_cols];
    for (w_idx, w) in tests.iter().enumerate() {
        print!("{:<12}", w.name);
        for col in 0..n_cols {
            let row = rows[w_idx * labels.len() + col];
            assert_eq!(row.workload, w.name, "engine row order");
            sums[col] += row.normalized_frequency;
            incur[col] += row.incursions;
            print!(
                " {:>7.4}{}",
                row.normalized_frequency,
                if row.incursions > 0 { "*" } else { " " }
            );
        }
        println!();
    }
    print!("{:<12}", "AVG");
    for col in 0..n_cols {
        print!(
            " {:>7.4}{}",
            sums[col] / tests.len() as f64,
            if incur[col] > 0 { "*" } else { " " }
        );
    }
    println!();

    // Baseline sanity and the headline deltas.
    let baseline = rows[n_cols]; // workload 0, last column
    assert!((baseline.normalized_frequency - 1.0).abs() < 1e-9);
    let th = sums[0] / tests.len() as f64;
    let ml05 = sums[2] / tests.len() as f64;
    println!("\nTH-00 over baseline: {:+.1}%", (th - 1.0) * 100.0);
    println!(
        "ML05 over TH-00:     {:+.1}%  (paper: +4.5%)",
        (ml05 / th - 1.0) * 100.0
    );

    reporting.finish(Some(&report)).expect("reporting");
}
