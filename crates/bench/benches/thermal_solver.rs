//! Criterion bench: thermal-solver and MLTD throughput at the paper's
//! grid resolution.

use criterion::{criterion_group, criterion_main, Criterion};
use floorplan::{Floorplan, Grid, GridSpec};
use hotgauge::MltdMap;
use std::hint::black_box;
use thermal::{ThermalConfig, ThermalGrid};

fn bench_thermal_step(c: &mut Criterion) {
    let grid = Grid::rasterize(&Floorplan::skylake_like(), GridSpec::default()).expect("grid");
    let mut t = ThermalGrid::new(&grid, ThermalConfig::default());
    let power = vec![0.03; grid.spec().cells()];
    c.bench_function("thermal_step_80us_32x24", |b| {
        b.iter(|| t.step(black_box(&power), 80.0).expect("step"))
    });

    let fine = Grid::rasterize(
        &Floorplan::skylake_like(),
        GridSpec::new(64, 48).expect("spec"),
    )
    .expect("grid");
    let mut tf = ThermalGrid::new(&fine, ThermalConfig::default());
    let power_fine = vec![0.0075; fine.spec().cells()];
    c.bench_function("thermal_step_80us_64x48", |b| {
        b.iter(|| tf.step(black_box(&power_fine), 80.0).expect("step"))
    });
}

fn bench_mltd(c: &mut Criterion) {
    let grid = Grid::rasterize(&Floorplan::skylake_like(), GridSpec::default()).expect("grid");
    let mltd = MltdMap::new(&grid, 0.6);
    let temps: Vec<f64> = (0..grid.spec().cells())
        .map(|i| 45.0 + ((i * 37) % 50) as f64)
        .collect();
    c.bench_function("mltd_compute_32x24_r0.6mm", |b| {
        b.iter(|| black_box(mltd.compute(black_box(&temps))))
    });
}

criterion_group!(benches, bench_thermal_step, bench_mltd);
criterion_main!(benches);
