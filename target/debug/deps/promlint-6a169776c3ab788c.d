/root/repo/target/debug/deps/promlint-6a169776c3ab788c.d: crates/bench/src/bin/promlint.rs

/root/repo/target/debug/deps/promlint-6a169776c3ab788c: crates/bench/src/bin/promlint.rs

crates/bench/src/bin/promlint.rs:
