/root/repo/target/debug/deps/proptest-0425453dd16444c2.d: /tmp/vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-0425453dd16444c2.rmeta: /tmp/vendor/proptest/src/lib.rs

/tmp/vendor/proptest/src/lib.rs:
