//! Prior-work baselines (§II-C / §IV-C of the paper).
//!
//! The paper contrasts Boreas with *temperature-only* machine-learning
//! approaches, specifically Cochran & Reda (DAC 2010): performance
//! counters are reduced with **PCA**, workload **phases** are clustered
//! with k-means over the principal components, and a **per-phase linear
//! regression** predicts the future temperature, which a threshold
//! controller then acts on. Everything here is implemented from scratch:
//!
//! * [`pca`] — principal component analysis via a cyclic Jacobi
//!   eigendecomposition of the covariance matrix;
//! * [`linreg`] — ridge-regularised ordinary least squares via normal
//!   equations and Gaussian elimination;
//! * [`kmeans`] — k-means in arbitrary dimension (the floorplan crate's
//!   2-D version is for die coordinates);
//! * [`cochran_reda`] — the assembled phase-aware temperature predictor
//!   and its DVFS controller, pluggable into the same
//!   [`boreas_core::RunSpec`] closed loop as Boreas.
//!
//! # Examples
//!
//! ```
//! use boreas_baselines::pca::Pca;
//!
//! // Two perfectly correlated features compress to one component.
//! let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
//! let pca = Pca::fit(&rows, 1)?;
//! assert!(pca.explained_variance_ratio()[0] > 0.999);
//! # Ok::<(), common::Error>(())
//! ```

// Dense matrix kernels index several buffers by the same loop variable;
// iterator rewrites obscure the row/column arithmetic.
#![allow(clippy::needless_range_loop)]

pub mod cochran_reda;
pub mod kmeans;
pub mod linreg;
pub mod pca;

pub use cochran_reda::{CochranRedaModel, CochranRedaParams, TempPredController};
pub use kmeans::KMeans;
pub use linreg::RidgeRegression;
pub use pca::Pca;
