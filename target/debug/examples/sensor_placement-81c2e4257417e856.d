/root/repo/target/debug/examples/sensor_placement-81c2e4257417e856.d: examples/sensor_placement.rs Cargo.toml

/root/repo/target/debug/examples/libsensor_placement-81c2e4257417e856.rmeta: examples/sensor_placement.rs Cargo.toml

examples/sensor_placement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
