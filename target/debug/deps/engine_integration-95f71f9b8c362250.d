/root/repo/target/debug/deps/engine_integration-95f71f9b8c362250.d: crates/engine/tests/engine_integration.rs Cargo.toml

/root/repo/target/debug/deps/libengine_integration-95f71f9b8c362250.rmeta: crates/engine/tests/engine_integration.rs Cargo.toml

crates/engine/tests/engine_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
