/root/repo/target/debug/deps/promlint-78abfc0fa22f780c.d: crates/bench/src/bin/promlint.rs Cargo.toml

/root/repo/target/debug/deps/libpromlint-78abfc0fa22f780c.rmeta: crates/bench/src/bin/promlint.rs Cargo.toml

crates/bench/src/bin/promlint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
