//! The explicit RC-grid solver.

use crate::config::ThermalConfig;
use common::units::Celsius;
use common::{Error, Result};
use floorplan::Grid;
use simd::Isa;
#[cfg(target_arch = "x86_64")]
use simd::{SimdF64, MAX_LANES};

/// Transient thermal state of the die grid plus the lumped package node.
///
/// Created from a rasterised floorplan; advanced by [`ThermalGrid::step`]
/// with one power value per grid cell.
#[derive(Debug, Clone)]
pub struct ThermalGrid {
    cfg: ThermalConfig,
    nx: usize,
    ny: usize,
    /// Die temperatures, °C, row-major.
    temps: Vec<f64>,
    /// Lumped package temperature, °C.
    pkg_temp: f64,
    /// Lateral conductance between adjacent cells along x, W/K.
    g_lat_x: f64,
    /// Lateral conductance between adjacent cells along y, W/K.
    g_lat_y: f64,
    /// Vertical conductance per cell, W/K.
    g_vert: f64,
    /// Heat capacity per cell, J/K.
    c_cell: f64,
    /// Stable sub-step, seconds.
    dt: f64,
    /// Scratch buffer for the update.
    scratch: Vec<f64>,
    /// Instruction set the stencil sweep runs on (process-wide
    /// [`Isa::active`] by default; overridable per grid for equivalence
    /// tests and per-ISA benchmarking). Every ISA is bit-identical.
    isa: Isa,
}

impl ThermalGrid {
    /// Builds the network for `grid` with all temperatures at ambient.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; call
    /// [`ThermalConfig::validate`] first for fallible handling.
    pub fn new(grid: &Grid, cfg: ThermalConfig) -> Self {
        cfg.validate().expect("invalid thermal configuration");
        let nx = grid.spec().nx;
        let ny = grid.spec().ny;
        let t_m = cfg.die_thickness_mm * 1e-3;
        let w_m = grid.cell_width() * 1e-3;
        let h_m = grid.cell_height() * 1e-3;

        // Lateral conduction: k * cross-section / distance.
        let g_lat_x = cfg.k_silicon * (t_m * h_m) / w_m;
        let g_lat_y = cfg.k_silicon * (t_m * w_m) / h_m;
        // Vertical: cell area over the area-specific resistance.
        let area_cm2 = (grid.cell_area()) * 1e-2; // mm^2 -> cm^2
        let g_vert = area_cm2 / cfg.r_vertical_kcm2_per_w;
        let c_cell = cfg.volumetric_heat_capacity * (w_m * h_m * t_m);

        // Explicit-stability limit: dt < C / sum(G). Use half for margin.
        let g_max = 2.0 * (g_lat_x + g_lat_y) + g_vert;
        let dt_stable_us = 0.5 * (c_cell / g_max) * 1e6;
        let dt = (cfg.max_dt_us.min(dt_stable_us)) * 1e-6;

        let ambient = cfg.ambient.value();
        Self {
            cfg,
            nx,
            ny,
            temps: vec![ambient; nx * ny],
            pkg_temp: ambient,
            g_lat_x,
            g_lat_y,
            g_vert,
            c_cell,
            dt,
            scratch: vec![0.0; nx * ny],
            isa: Isa::active(),
        }
    }

    /// Pins the stencil sweep to a specific instruction set (equivalence
    /// tests, per-ISA benchmarking). Results are bit-identical across
    /// ISAs; only throughput changes.
    ///
    /// # Panics
    ///
    /// Panics if this CPU cannot execute `isa`.
    #[must_use]
    pub fn with_isa(mut self, isa: Isa) -> Self {
        assert!(isa.is_supported(), "{isa} not supported on this CPU");
        self.isa = isa;
        self
    }

    /// The instruction set the stencil sweep runs on.
    pub fn isa(&self) -> Isa {
        self.isa
    }

    /// The configuration in use.
    pub fn config(&self) -> &ThermalConfig {
        &self.cfg
    }

    /// The sub-step actually used by the integrator, µs.
    pub fn dt_us(&self) -> f64 {
        self.dt * 1e6
    }

    /// Current die temperatures, °C, row-major.
    pub fn temperatures(&self) -> &[f64] {
        &self.temps
    }

    /// Current package temperature.
    pub fn package_temp(&self) -> Celsius {
        Celsius::new(self.pkg_temp)
    }

    /// Hottest die cell.
    pub fn max_temp(&self) -> Celsius {
        Celsius::new(self.temps.iter().copied().fold(f64::NEG_INFINITY, f64::max))
    }

    /// Mean die temperature.
    pub fn avg_temp(&self) -> Celsius {
        Celsius::new(self.temps.iter().sum::<f64>() / self.temps.len() as f64)
    }

    /// Temperature of one cell by flat (row-major) index.
    ///
    /// # Panics
    ///
    /// Panics if `flat` is out of range.
    pub fn temp_at(&self, flat: usize) -> Celsius {
        Celsius::new(self.temps[flat])
    }

    /// Resets every node to ambient.
    pub fn reset(&mut self) {
        let a = self.cfg.ambient.value();
        self.temps.fill(a);
        self.pkg_temp = a;
    }

    /// Advances the network by `duration_us` with the given per-cell power
    /// (watts), held constant over the duration. Internally sub-steps at
    /// the stable `dt`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if `power` has the wrong length,
    /// or [`Error::Numerical`] if non-finite power is supplied.
    pub fn step(&mut self, power: &[f64], duration_us: f64) -> Result<()> {
        self.validate_power(power)?;
        // Integer substep count with one fractional tail instead of a
        // `remaining -= dt` loop: repeated subtraction accumulates float
        // error, so `dt_us()`-aligned durations (the 80 µs pipeline step
        // with the default 20 µs substep) could pick up a spurious tiny
        // trailing substep. With the quotient form, aligned durations run
        // exactly `n` full-`dt` substeps — the branch-free fast path —
        // and only genuinely unaligned durations take the tail.
        let duration = duration_us * 1e-6;
        let n_full = (duration / self.dt) as usize; // saturating: <0 -> 0
        let tail = duration - n_full as f64 * self.dt;
        let dt = self.dt;
        for _ in 0..n_full {
            self.substep(power, dt);
        }
        if tail > 1e-12 {
            self.substep(power, tail);
        }
        Ok(())
    }

    fn validate_power(&self, power: &[f64]) -> Result<()> {
        if power.len() != self.temps.len() {
            return Err(Error::ShapeMismatch {
                what: "power map",
                expected: self.temps.len(),
                actual: power.len(),
            });
        }
        if !power.iter().all(|p| p.is_finite()) {
            return Err(Error::Numerical("non-finite power input".into()));
        }
        Ok(())
    }

    /// One explicit-Euler sub-step of `dt` seconds.
    ///
    /// The four boundary edges are peeled so the interior loop carries no
    /// neighbour-existence branches or unhoistable bounds checks; the
    /// package-flux accumulation is fused into the same sweep. Every cell
    /// evaluates the *same floating-point expression in the same order*
    /// as the reference integrator ([`ThermalGrid::step_reference`]), so
    /// the output is bit-identical — the speedup comes purely from branch
    /// removal, per-row slicing and register-resident coefficients, never
    /// from re-associating the arithmetic.
    fn substep(&mut self, power: &[f64], dt: f64) {
        let (nx, ny) = (self.nx, self.ny);
        if nx < 2 || ny < 2 {
            // Degenerate strips have no interior worth peeling.
            self.substep_reference(power, dt);
            return;
        }
        let coeffs = CellCoeffs {
            gx: self.g_lat_x,
            gy: self.g_lat_y,
            gv: self.g_vert,
            dt,
            c_cell: self.c_cell,
            pkg: self.pkg_temp,
        };
        let t = &self.temps[..];
        let out = &mut self.scratch[..];
        let mut pkg_flux = 0.0;

        // One sweep over the grid on the selected ISA. Every path visits
        // the cells in the same row-major order and evaluates the same
        // IEEE expression per cell, so the output field *and* the running
        // package-flux sum round identically on all of them.
        match self.isa {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `with_isa`/`Isa::active` only admit supported ISAs.
            Isa::Avx2 => unsafe {
                rows_sweep_avx2(&coeffs, t, power, out, nx, ny, &mut pkg_flux);
            },
            #[cfg(target_arch = "x86_64")]
            Isa::Sse2 => {
                rows_sweep_lanes::<simd::F64x2>(&coeffs, t, power, out, nx, ny, &mut pkg_flux);
            }
            _ => rows_sweep_scalar(&coeffs, t, power, out, nx, ny, &mut pkg_flux),
        }

        let ambient = self.cfg.ambient.value();
        pkg_flux += self.cfg.sink_conductance_w_per_k * (ambient - self.pkg_temp);
        self.pkg_temp += dt * pkg_flux / self.cfg.package_capacity_j_per_k;
        std::mem::swap(&mut self.temps, &mut self.scratch);
    }

    /// The seed (pre-optimisation) integrator: branchy stencil plus the
    /// `remaining -= dt` substep loop. Kept as the reference the fused
    /// kernel is pinned against (equivalence tests) and as the baseline
    /// `bench_hotpath` measures speedups from; not used on the hot path.
    ///
    /// # Errors
    ///
    /// Same as [`ThermalGrid::step`].
    pub fn step_reference(&mut self, power: &[f64], duration_us: f64) -> Result<()> {
        self.validate_power(power)?;
        let mut remaining = duration_us * 1e-6;
        while remaining > 1e-12 {
            let dt = self.dt.min(remaining);
            self.substep_reference(power, dt);
            remaining -= dt;
        }
        Ok(())
    }

    /// One reference sub-step (the seed's branchy stencil sweep).
    fn substep_reference(&mut self, power: &[f64], dt: f64) {
        let (nx, ny) = (self.nx, self.ny);
        let t = &self.temps;
        let out = &mut self.scratch;
        let mut pkg_flux = 0.0;

        for iy in 0..ny {
            for ix in 0..nx {
                let i = iy * nx + ix;
                let ti = t[i];
                let mut flux = power[i] + self.g_vert * (self.pkg_temp - ti);
                if ix > 0 {
                    flux += self.g_lat_x * (t[i - 1] - ti);
                }
                if ix + 1 < nx {
                    flux += self.g_lat_x * (t[i + 1] - ti);
                }
                if iy > 0 {
                    flux += self.g_lat_y * (t[i - nx] - ti);
                }
                if iy + 1 < ny {
                    flux += self.g_lat_y * (t[i + nx] - ti);
                }
                pkg_flux += self.g_vert * (ti - self.pkg_temp);
                out[i] = ti + dt * flux / self.c_cell;
            }
        }
        let ambient = self.cfg.ambient.value();
        pkg_flux += self.cfg.sink_conductance_w_per_k * (ambient - self.pkg_temp);
        self.pkg_temp += dt * pkg_flux / self.cfg.package_capacity_j_per_k;
        std::mem::swap(&mut self.temps, &mut self.scratch);
    }

    /// Runs the network to (approximate) steady state under constant
    /// power: integrates until the largest per-millisecond change falls
    /// below `tol_c` or `max_ms` is reached. Returns the simulated time in
    /// ms.
    ///
    /// # Errors
    ///
    /// Same as [`ThermalGrid::step`].
    pub fn run_to_steady(&mut self, power: &[f64], tol_c: f64, max_ms: f64) -> Result<f64> {
        let mut elapsed = 0.0;
        let mut prev = self.temps.clone();
        let mut prev_pkg = self.pkg_temp;
        while elapsed < max_ms {
            self.step(power, 1_000.0)?;
            elapsed += 1.0;
            let max_delta = self
                .temps
                .iter()
                .zip(&prev)
                .map(|(a, b)| (a - b).abs())
                .fold((self.pkg_temp - prev_pkg).abs(), f64::max);
            if max_delta < tol_c {
                break;
            }
            prev.copy_from_slice(&self.temps);
            prev_pkg = self.pkg_temp;
        }
        Ok(elapsed)
    }

    /// Total heat currently flowing out of the package to ambient, W.
    pub fn heat_to_ambient(&self) -> f64 {
        self.cfg.sink_conductance_w_per_k * (self.pkg_temp - self.cfg.ambient.value())
    }
}

/// Per-substep constants hoisted out of the cell loops.
struct CellCoeffs {
    gx: f64,
    gy: f64,
    gv: f64,
    dt: f64,
    c_cell: f64,
    pkg: f64,
}

impl CellCoeffs {
    /// The seed's per-cell update, with the vertical-neighbour terms
    /// selected at compile time: `flux` accumulates power, vertical,
    /// left, right, up, down in exactly the reference order. The
    /// caller accumulates the cell's package-flux contribution
    /// ([`CellCoeffs::pkg_contrib`]) in the same row-major cell order
    /// as the reference.
    #[inline(always)]
    fn cell<const LEFT: bool, const RIGHT: bool, const UP: bool, const DOWN: bool>(
        &self,
        ti: f64,
        p: f64,
        left: f64,
        right: f64,
        up: f64,
        down: f64,
    ) -> f64 {
        let mut flux = p + self.gv * (self.pkg - ti);
        if LEFT {
            flux += self.gx * (left - ti);
        }
        if RIGHT {
            flux += self.gx * (right - ti);
        }
        if UP {
            flux += self.gy * (up - ti);
        }
        if DOWN {
            flux += self.gy * (down - ti);
        }
        ti + self.dt * flux / self.c_cell
    }

    /// One cell's contribution to the running package-flux sum.
    #[inline(always)]
    fn pkg_contrib(&self, ti: f64) -> f64 {
        self.gv * (ti - self.pkg)
    }
}

/// The PR 3 scalar sweep: top row (no `up` neighbour), interior rows,
/// bottom row, all through the boundary-peeled [`row_update`].
fn rows_sweep_scalar(
    coeffs: &CellCoeffs,
    t: &[f64],
    power: &[f64],
    out: &mut [f64],
    nx: usize,
    ny: usize,
    pkg_flux: &mut f64,
) {
    row_update::<false, true>(
        coeffs,
        None,
        &t[..nx],
        Some(&t[nx..2 * nx]),
        &power[..nx],
        &mut out[..nx],
        pkg_flux,
    );
    for iy in 1..ny - 1 {
        let base = iy * nx;
        row_update::<true, true>(
            coeffs,
            Some(&t[base - nx..base]),
            &t[base..base + nx],
            Some(&t[base + nx..base + 2 * nx]),
            &power[base..base + nx],
            &mut out[base..base + nx],
            pkg_flux,
        );
    }
    let base = (ny - 1) * nx;
    row_update::<true, false>(
        coeffs,
        Some(&t[base - nx..base]),
        &t[base..base + nx],
        None,
        &power[base..base + nx],
        &mut out[base..base + nx],
        pkg_flux,
    );
}

/// The AVX2 entry point: identical structure to the generic sweep, but
/// compiled with 256-bit lanes enabled so [`row_update_lanes`] inlines
/// into 4-wide code. Safe to call only after an [`Isa::Avx2`] support
/// check — enforced by the dispatch in [`ThermalGrid::substep`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn rows_sweep_avx2(
    coeffs: &CellCoeffs,
    t: &[f64],
    power: &[f64],
    out: &mut [f64],
    nx: usize,
    ny: usize,
    pkg_flux: &mut f64,
) {
    rows_sweep_lanes::<simd::F64x4>(coeffs, t, power, out, nx, ny, pkg_flux);
}

/// The lane-parallel sweep: same row order as [`rows_sweep_scalar`],
/// with each row's interior updated `V::LANES` cells at a time.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn rows_sweep_lanes<V: SimdF64>(
    coeffs: &CellCoeffs,
    t: &[f64],
    power: &[f64],
    out: &mut [f64],
    nx: usize,
    ny: usize,
    pkg_flux: &mut f64,
) {
    row_update_lanes::<V, false, true>(
        coeffs,
        None,
        &t[..nx],
        Some(&t[nx..2 * nx]),
        &power[..nx],
        &mut out[..nx],
        pkg_flux,
    );
    for iy in 1..ny - 1 {
        let base = iy * nx;
        row_update_lanes::<V, true, true>(
            coeffs,
            Some(&t[base - nx..base]),
            &t[base..base + nx],
            Some(&t[base + nx..base + 2 * nx]),
            &power[base..base + nx],
            &mut out[base..base + nx],
            pkg_flux,
        );
    }
    let base = (ny - 1) * nx;
    row_update_lanes::<V, true, false>(
        coeffs,
        Some(&t[base - nx..base]),
        &t[base..base + nx],
        None,
        &power[base..base + nx],
        &mut out[base..base + nx],
        pkg_flux,
    );
}

/// [`row_update`] with the interior loop running on `V::LANES`-wide
/// vectors. Bit-identity with the scalar row: the edges and the
/// `< V::LANES` remainder go through the *same* [`CellCoeffs::cell`]
/// expression, the vector lanes evaluate that expression with exact
/// elementwise `add`/`sub`/`mul`/`div` (no FMA contraction — the lane
/// wrappers only expose the unfused intrinsics), and each lane's
/// package-flux contribution is spilled and added to the running scalar
/// sum in lane order, i.e. in the reference's row-major cell order.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn row_update_lanes<V: SimdF64, const UP: bool, const DOWN: bool>(
    c: &CellCoeffs,
    up_row: Option<&[f64]>,
    row: &[f64],
    down_row: Option<&[f64]>,
    p_row: &[f64],
    out_row: &mut [f64],
    pkg_flux: &mut f64,
) {
    let nx = row.len();
    let up_row = up_row.unwrap_or(row);
    let down_row = down_row.unwrap_or(row);
    // Left edge (scalar, as in the reference).
    *pkg_flux += c.pkg_contrib(row[0]);
    out_row[0] =
        c.cell::<false, true, UP, DOWN>(row[0], p_row[0], 0.0, row[1], up_row[0], down_row[0]);

    let gx = V::splat(c.gx);
    let gy = V::splat(c.gy);
    let gv = V::splat(c.gv);
    let dt = V::splat(c.dt);
    let c_cell = V::splat(c.c_cell);
    let pkg = V::splat(c.pkg);
    let mut spilled = [0.0; MAX_LANES];

    // Interior, V::LANES cells at a time.
    let mut ix = 1;
    while ix + V::LANES < nx {
        let ti = V::from_slice(&row[ix..]);
        // flux accumulates power, vertical, left, right, up, down — the
        // exact term order of `CellCoeffs::cell`.
        let mut flux = V::from_slice(&p_row[ix..]).add(gv.mul(pkg.sub(ti)));
        flux = flux.add(gx.mul(V::from_slice(&row[ix - 1..]).sub(ti)));
        flux = flux.add(gx.mul(V::from_slice(&row[ix + 1..]).sub(ti)));
        if UP {
            flux = flux.add(gy.mul(V::from_slice(&up_row[ix..]).sub(ti)));
        }
        if DOWN {
            flux = flux.add(gy.mul(V::from_slice(&down_row[ix..]).sub(ti)));
        }
        ti.add(dt.mul(flux).div(c_cell))
            .write_to(&mut out_row[ix..]);
        // Package flux: elementwise contributions, summed in cell order.
        gv.mul(ti.sub(pkg)).spill(&mut spilled);
        for &contrib in &spilled[..V::LANES] {
            *pkg_flux += contrib;
        }
        ix += V::LANES;
    }
    // Interior remainder (scalar).
    for ix in ix..nx - 1 {
        *pkg_flux += c.pkg_contrib(row[ix]);
        out_row[ix] = c.cell::<true, true, UP, DOWN>(
            row[ix],
            p_row[ix],
            row[ix - 1],
            row[ix + 1],
            up_row[ix],
            down_row[ix],
        );
    }
    // Right edge.
    let e = nx - 1;
    *pkg_flux += c.pkg_contrib(row[e]);
    out_row[e] =
        c.cell::<true, false, UP, DOWN>(row[e], p_row[e], row[e - 1], 0.0, up_row[e], down_row[e]);
}

/// Updates one grid row with the left/right edge cells peeled off the
/// interior loop; `UP`/`DOWN` select the vertical neighbour terms at
/// monomorphisation time so no row carries neighbour-existence branches.
#[inline(always)]
fn row_update<const UP: bool, const DOWN: bool>(
    c: &CellCoeffs,
    up_row: Option<&[f64]>,
    row: &[f64],
    down_row: Option<&[f64]>,
    p_row: &[f64],
    out_row: &mut [f64],
    pkg_flux: &mut f64,
) {
    let nx = row.len();
    let up_row = up_row.unwrap_or(row);
    let down_row = down_row.unwrap_or(row);
    // Left edge.
    *pkg_flux += c.pkg_contrib(row[0]);
    out_row[0] =
        c.cell::<false, true, UP, DOWN>(row[0], p_row[0], 0.0, row[1], up_row[0], down_row[0]);
    // Interior: all four lateral neighbours exist; the slice indexing is
    // bounds-check-free after the compiler sees the common length.
    for ix in 1..nx - 1 {
        *pkg_flux += c.pkg_contrib(row[ix]);
        out_row[ix] = c.cell::<true, true, UP, DOWN>(
            row[ix],
            p_row[ix],
            row[ix - 1],
            row[ix + 1],
            up_row[ix],
            down_row[ix],
        );
    }
    // Right edge.
    let e = nx - 1;
    *pkg_flux += c.pkg_contrib(row[e]);
    out_row[e] =
        c.cell::<true, false, UP, DOWN>(row[e], p_row[e], row[e - 1], 0.0, up_row[e], down_row[e]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use floorplan::{Floorplan, GridSpec, UnitKind};

    fn make(nx: usize, ny: usize) -> (Grid, ThermalGrid) {
        let grid =
            Grid::rasterize(&Floorplan::skylake_like(), GridSpec::new(nx, ny).unwrap()).unwrap();
        let tg = ThermalGrid::new(&grid, ThermalConfig::default());
        (grid, tg)
    }

    #[test]
    fn starts_at_ambient() {
        let (_, tg) = make(16, 12);
        assert_eq!(tg.max_temp(), Celsius::AMBIENT);
        assert_eq!(tg.package_temp(), Celsius::AMBIENT);
    }

    #[test]
    fn zero_power_stays_at_ambient() {
        let (g, mut tg) = make(16, 12);
        let zero = vec![0.0; g.spec().cells()];
        tg.step(&zero, 10_000.0).unwrap();
        assert!((tg.max_temp().value() - 45.0).abs() < 1e-9);
    }

    #[test]
    fn heating_then_cooling_decays_towards_ambient() {
        let (g, mut tg) = make(16, 12);
        let power = vec![0.05; g.spec().cells()];
        tg.step(&power, 5_000.0).unwrap();
        let hot = tg.max_temp().value();
        assert!(hot > 46.0, "die should heat ({hot})");
        let zero = vec![0.0; g.spec().cells()];
        let mut last = hot;
        for _ in 0..10 {
            tg.step(&zero, 2_000.0).unwrap();
            let now = tg.max_temp().value();
            assert!(
                now <= last + 1e-9,
                "cooling must be monotone: {last} -> {now}"
            );
            last = now;
        }
        assert!(last < hot, "die should cool");
    }

    #[test]
    fn uniform_power_gives_uniform_temperature() {
        let (g, mut tg) = make(16, 12);
        let power = vec![0.03; g.spec().cells()];
        tg.step(&power, 20_000.0).unwrap();
        let min = tg
            .temperatures()
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let max = tg.max_temp().value();
        assert!(
            max - min < 0.01,
            "uniform power must stay uniform ({min}..{max})"
        );
    }

    #[test]
    fn concentrated_power_creates_local_contrast() {
        let (g, mut tg) = make(32, 24);
        let mut power = vec![0.001; g.spec().cells()];
        // Drop ~6 W on the FPU block.
        let fpu = g.cells_of(UnitKind::Fpu);
        for cell in &fpu {
            power[g.flat(*cell)] = 6.0 / fpu.len() as f64;
        }
        tg.step(&power, 4_000.0).unwrap();
        let max = tg.max_temp().value();
        let min = tg
            .temperatures()
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        assert!(
            max - min > 15.0,
            "hotspot contrast too small: {}",
            max - min
        );
        // The hottest cell must be inside (or adjacent to) the FPU.
        let (imax, _) = tg
            .temperatures()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let hot_cells: Vec<usize> = fpu.iter().map(|c| g.flat(*c)).collect();
        assert!(hot_cells.contains(&imax), "hottest cell not in FPU");
    }

    #[test]
    fn fast_local_heating_rate_is_tens_of_k_per_ms() {
        // The property that makes advanced hotspots outrun slow sensors.
        let (g, mut tg) = make(32, 24);
        let mut power = vec![0.0; g.spec().cells()];
        let fpu = g.cells_of(UnitKind::Fpu);
        for cell in &fpu {
            power[g.flat(*cell)] = 10.0 / fpu.len() as f64;
        }
        tg.step(&power, 500.0).unwrap();
        let rise = tg.max_temp().value() - 45.0;
        assert!(
            rise > 5.0,
            "0.5 ms of 10 W on the FPU should raise >5 K, got {rise}"
        );
    }

    /// A stack with a tiny package capacity so steady state is reachable
    /// within a test-sized simulation (the default 20 J/K package has a
    /// 10 s time constant).
    fn fast_package() -> ThermalConfig {
        ThermalConfig {
            package_capacity_j_per_k: 0.2,
            ..ThermalConfig::default()
        }
    }

    #[test]
    fn steady_state_energy_balance() {
        let grid =
            Grid::rasterize(&Floorplan::skylake_like(), GridSpec::new(8, 6).unwrap()).unwrap();
        let mut tg = ThermalGrid::new(&grid, fast_package());
        let total_w = 12.0;
        let power = vec![total_w / grid.spec().cells() as f64; grid.spec().cells()];
        tg.run_to_steady(&power, 1e-7, 2_000.0).unwrap();
        let out = tg.heat_to_ambient();
        assert!(
            (out - total_w).abs() / total_w < 0.05,
            "steady-state outflow {out} W should match input {total_w} W"
        );
    }

    #[test]
    fn steady_temp_increases_with_power() {
        let grid =
            Grid::rasterize(&Floorplan::skylake_like(), GridSpec::new(8, 6).unwrap()).unwrap();
        let mut a = ThermalGrid::new(&grid, fast_package());
        let mut b = ThermalGrid::new(&grid, fast_package());
        let n = grid.spec().cells() as f64;
        a.run_to_steady(&vec![5.0 / n; grid.spec().cells()], 1e-7, 2_000.0)
            .unwrap();
        b.run_to_steady(&vec![10.0 / n; grid.spec().cells()], 1e-7, 2_000.0)
            .unwrap();
        assert!(b.avg_temp().value() > a.avg_temp().value() + 1.0);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let (_, mut tg) = make(8, 6);
        let err = tg.step(&[0.0; 3], 80.0).unwrap_err();
        assert!(matches!(err, Error::ShapeMismatch { .. }));
    }

    #[test]
    fn non_finite_power_is_an_error() {
        let (g, mut tg) = make(8, 6);
        let mut p = vec![0.0; g.spec().cells()];
        p[0] = f64::NAN;
        assert!(matches!(tg.step(&p, 80.0), Err(Error::Numerical(_))));
    }

    #[test]
    fn substep_respects_stability_limit() {
        let (_, tg) = make(32, 24);
        // For the default stack the stability limit is ~60 us; the solver
        // must have clamped below the configured 20 us maximum or the
        // stability bound, whichever is smaller.
        assert!(tg.dt_us() <= 20.0 + 1e-9);
        assert!(tg.dt_us() > 0.0);
    }

    #[test]
    fn every_available_isa_is_bit_identical_to_scalar() {
        let grid =
            Grid::rasterize(&Floorplan::skylake_like(), GridSpec::new(37, 23).unwrap()).unwrap();
        let power: Vec<f64> = (0..grid.spec().cells())
            .map(|i| 0.002 + 0.05 * (((i * 29) % 97) as f64 / 97.0))
            .collect();
        let mut scalar = ThermalGrid::new(&grid, ThermalConfig::default()).with_isa(Isa::Scalar);
        for _ in 0..8 {
            scalar.step(&power, 80.0).unwrap();
        }
        for isa in Isa::available() {
            let mut tg = ThermalGrid::new(&grid, ThermalConfig::default()).with_isa(isa);
            assert_eq!(tg.isa(), isa);
            for _ in 0..8 {
                tg.step(&power, 80.0).unwrap();
            }
            for (a, b) in tg.temperatures().iter().zip(scalar.temperatures()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{isa}");
            }
            assert_eq!(
                tg.package_temp().value().to_bits(),
                scalar.package_temp().value().to_bits(),
                "{isa}"
            );
        }
    }

    #[test]
    fn reset_restores_ambient() {
        let (g, mut tg) = make(8, 6);
        tg.step(&vec![0.1; g.spec().cells()], 5_000.0).unwrap();
        assert!(tg.max_temp().value() > 45.0);
        tg.reset();
        assert_eq!(tg.max_temp(), Celsius::AMBIENT);
        assert_eq!(tg.package_temp(), Celsius::AMBIENT);
    }

    #[test]
    fn finer_grid_converges_to_similar_average() {
        // Grid-resolution sanity: average die temperature under the same
        // total power should be grid-independent to first order.
        let (g1, mut a) = make(16, 12);
        let (g2, mut b) = make(32, 24);
        let total = 15.0;
        a.step(
            &vec![total / g1.spec().cells() as f64; g1.spec().cells()],
            10_000.0,
        )
        .unwrap();
        b.step(
            &vec![total / g2.spec().cells() as f64; g2.spec().cells()],
            10_000.0,
        )
        .unwrap();
        let d = (a.avg_temp().value() - b.avg_temp().value()).abs();
        assert!(d < 1.0, "grid dependence too strong: {d}");
    }
}
