/root/repo/target/release/deps/baseline_cochran_reda-7ea0dc48f3c01f91.d: crates/bench/src/bin/baseline_cochran_reda.rs

/root/repo/target/release/deps/baseline_cochran_reda-7ea0dc48f3c01f91: crates/bench/src/bin/baseline_cochran_reda.rs

crates/bench/src/bin/baseline_cochran_reda.rs:
