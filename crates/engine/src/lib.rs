//! Scenario-based experiment engine for the Boreas reproduction.
//!
//! Every figure in the paper is a grid of independent simulations —
//! workloads × operating points for the Fig. 2 severity sweep, workloads
//! × controllers (× fault plans) for the closed-loop evaluations. This
//! crate turns those grids into first-class data and executes them
//! efficiently:
//!
//! * [`Scenario`] — a typed, serialisable experiment description:
//!   workload set, VF table, step budget, and either a severity sweep or
//!   a closed-loop controller matrix with optional [`FaultCell`]s;
//! * [`Session`] — expands a scenario into a deterministic job graph and
//!   runs it on a work-stealing thread pool ([`crossbeam::deque`]) with
//!   per-thread controller reuse, memoising every job result in a
//!   content-addressed [`ArtifactCache`];
//! * [`SessionReport`] — results in scenario order (byte-identical
//!   regardless of thread count) plus [`EngineCounters`]: jobs run vs
//!   cached, per-stage wall time and the cache hit rate.
//!
//! Execution is *supervised* (DESIGN.md §12): a panicking or failing job
//! is isolated by the pool, retried in deterministic waves under the
//! session's [`RetryPolicy`], and quarantined on the report
//! ([`SessionReport::quarantined`]) if it keeps failing — one bad job
//! never aborts a sweep. Completed jobs are checkpointed (artifact +
//! manifest line) as they finish, so a killed run continues from where
//! it stopped via [`Session::resume`] with byte-identical results, and
//! every cached artifact carries a content checksum that quarantines
//! torn or bit-flipped files instead of trusting them.
//!
//! Pass an [`obs::Obs`] bundle to [`Session::new`] (or attach one with
//! [`Session::observe`]) and the session streams execution metrics,
//! span timings and per-decision flight events into it; result-domain
//! metrics (`scenario_*`) are derived from the ordered rows, so cached
//! and fresh replays of the same scenario emit identical values.
//!
//! ```no_run
//! use boreas_core::VfTable;
//! use boreas_engine::{ControllerSpec, Scenario, Session};
//! use hotgauge::PipelineConfig;
//! use workloads::WorkloadSpec;
//!
//! # fn main() -> common::Result<()> {
//! let pipeline = PipelineConfig::paper().build()?;
//! let scenario = Scenario::severity_sweep(
//!     "fig2",
//!     WorkloadSpec::test_set(),
//!     VfTable::paper(),
//!     150,
//! );
//! let obs = obs::Obs::new();
//! let session = Session::new(pipeline, obs.clone())?;
//! let report = session.run(&scenario)?;
//! println!("{}", report.counters.summary());
//! print!("{}", obs.metrics.snapshot().to_prometheus());
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod pool;
pub mod scenario;
pub mod session;
pub mod supervisor;

pub use cache::{ArtifactCache, CacheLookup, CACHE_DIR_ENV};
pub use pool::JobOutcome;
pub use scenario::{BuiltController, ControllerSpec, FaultCell, Scenario, ScenarioKind};
pub use session::{
    EngineCounters, JobResult, LoopRunResult, Session, SessionReport, SweepPointResult,
};
pub use supervisor::{QuarantinedJob, RetryPolicy, SupervisedRun, SupervisorEvent};
