/root/repo/target/debug/deps/thermal_solver-e745a7a5bcaa349f.d: crates/bench/benches/thermal_solver.rs Cargo.toml

/root/repo/target/debug/deps/libthermal_solver-e745a7a5bcaa349f.rmeta: crates/bench/benches/thermal_solver.rs Cargo.toml

crates/bench/benches/thermal_solver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
