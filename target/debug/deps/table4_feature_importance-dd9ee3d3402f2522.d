/root/repo/target/debug/deps/table4_feature_importance-dd9ee3d3402f2522.d: crates/bench/src/bin/table4_feature_importance.rs

/root/repo/target/debug/deps/table4_feature_importance-dd9ee3d3402f2522: crates/bench/src/bin/table4_feature_importance.rs

crates/bench/src/bin/table4_feature_importance.rs:
