//! The `BOREAS_SIMD` override: accepted values select the ISA, unknown
//! or unsupported values are hard errors (never a silent fallback).
//!
//! All cases run in one `#[test]` because the environment is
//! process-global state.

use boreas_simd::{Isa, ISA_ENV};

#[test]
fn env_override_selects_and_rejects() {
    // Unset: the detected ISA wins.
    std::env::remove_var(ISA_ENV);
    assert_eq!(Isa::from_env().unwrap(), Isa::detect());

    // Scalar is always honoured, whatever the hardware.
    std::env::set_var(ISA_ENV, "scalar");
    assert_eq!(Isa::from_env().unwrap(), Isa::Scalar);

    // Every supported ISA can be forced explicitly.
    for isa in Isa::available() {
        std::env::set_var(ISA_ENV, isa.name());
        assert_eq!(Isa::from_env().unwrap(), isa);
    }

    // Unknown value: an error naming the bad value, not a fallback.
    std::env::set_var(ISA_ENV, "neon");
    let err = Isa::from_env().unwrap_err();
    assert!(err.to_string().contains("neon"), "{err}");

    // An ISA this CPU cannot execute is an error too.
    if !Isa::Avx2.is_supported() {
        std::env::set_var(ISA_ENV, "avx2");
        let err = Isa::from_env().unwrap_err();
        assert!(err.to_string().contains("avx2"), "{err}");
    }

    std::env::remove_var(ISA_ENV);
}
