//! # Boreas — ML-based advanced-hotspot mitigation (ISPASS 2023 reproduction)
//!
//! This is the umbrella crate of the Boreas reproduction workspace. It
//! re-exports the public API of every subsystem so downstream users can
//! depend on a single crate:
//!
//! * [`common`] — units, time, errors, deterministic RNG
//! * [`floorplan`] — Skylake-like core floorplan, grid rasterisation,
//!   k-means thermal-sensor placement
//! * [`workloads`] — 27 SPEC CPU2006-like synthetic workload profiles
//! * [`perfsim`] — analytical out-of-order core model producing the 78
//!   hardware-telemetry counters every 80 µs
//! * [`powersim`] — per-functional-unit dynamic + leakage power model
//! * [`thermal`] — RC-grid thermal solver with a sensor model (placement,
//!   delay, quantisation)
//! * [`hotgauge`] — MLTD and Hotspot-Severity metrics plus the coupled
//!   performance→power→thermal simulation pipeline
//! * [`gbt`] — gradient-boosted regression trees (training, prediction,
//!   gain importance, cross-validation, grid search, hardware-cost model)
//! * [`telemetry`] — feature definitions, dataset extraction, train/test
//!   splitting and gain-based feature selection
//! * [`boreas_core`] — the paper's contribution: the VF table and the
//!   oracle / global / thermal / ML frequency controllers with the
//!   [`boreas_core::RunSpec`] closed-loop runner, plus the resilient
//!   degradation wrapper
//! * [`faults`] — deterministic sensor/telemetry fault injection for
//!   robustness campaigns
//! * [`engine`] — the experiment engine: declarative [`engine::Scenario`]s
//!   executed by a work-stealing [`engine::Session`] with a persistent
//!   content-addressed artifact cache
//! * [`obs`] — zero-dependency observability: an atomic metrics
//!   registry, structured span tracing, a bounded control-decision
//!   flight recorder, and Prometheus/JSONL exporters with an in-tree
//!   Prometheus linter
//! * [`serve`] — the online mitigation service: a streaming-telemetry
//!   daemon over the push-based [`boreas_core::OnlineController`] API,
//!   with a length-prefixed JSON wire protocol, sharded control loops,
//!   bounded-queue backpressure and a `/metrics` endpoint
//!
//! # Quickstart
//!
//! Describe an experiment as a [`engine::Scenario`] and hand it to a
//! [`engine::Session`]; the session expands it into jobs, runs them on a
//! work-stealing thread pool and memoizes every job result on disk.
//! Pass an [`obs::Obs`] bundle to watch it work — metrics, span
//! timings and per-decision flight events — and render the snapshot in
//! the Prometheus text format:
//!
//! ```no_run
//! use boreas::prelude::*;
//!
//! # fn main() -> common::Result<()> {
//! let pipeline = PipelineConfig::paper().build()?;
//! let scenario = Scenario::severity_sweep(
//!     "quickstart",
//!     WorkloadSpec::test_set(),
//!     VfTable::paper(),
//!     150,
//! );
//! let obs = Obs::new();
//! let report = Session::new(pipeline, obs.clone())?.run(&scenario)?;
//! for p in report.sweep_points() {
//!     println!("{} @ {:.2} GHz: severity {:.2}", p.workload, p.freq_ghz, p.peak_severity);
//! }
//! println!("{}", report.counters.summary());
//! print!("{}", obs.metrics.snapshot().to_prometheus());
//! # Ok(())
//! # }
//! ```
//!
//! For one-off closed loops (custom controllers, fault filters) drive the
//! [`boreas_core::RunSpec`] runner directly:
//!
//! ```no_run
//! use boreas::prelude::*;
//!
//! # fn main() -> common::Result<()> {
//! let pipeline = PipelineConfig::paper().build()?;
//! let spec = WorkloadSpec::by_name("gromacs")?;
//! let mut controller = GlobalVfController::new(VfTable::BASELINE_INDEX);
//! let out = RunSpec::new(&pipeline).steps(144).run(&spec, &mut controller)?;
//! println!("avg {:.3} GHz, incursions {}", out.avg_frequency.value(), out.incursions);
//! # Ok(())
//! # }
//! ```

pub use boreas_core;
pub use common;
pub use engine;
pub use faults;
pub use floorplan;
pub use gbt;
pub use hotgauge;
pub use obs;
pub use perfsim;
pub use powersim;
pub use serve;
pub use telemetry;
pub use thermal;
pub use workloads;

/// Commonly used items, re-exported for `use boreas::prelude::*`.
pub mod prelude {
    pub use boreas_core::{
        BoreasController, ControlDecision, ControlStage, Controller, CriticalTemps, DegradationLog,
        GlobalVfController, ObservationFilter, OnlineController, OracleController,
        ResilienceConfig, ResilientController, RunSpec, SweepTable, TelemetryFrame,
        ThermalController, TrainReport, TrainSpec, TrainingConfig, VfPoint, VfTable,
    };
    pub use common::time::SimTime;
    pub use common::units::{Celsius, GigaHertz, Volts, Watts};
    pub use common::Result;
    pub use engine::{
        ControllerSpec, FaultCell, QuarantinedJob, RetryPolicy, Scenario, Session, SessionReport,
    };
    pub use faults::{
        EngineFault, EngineFaultKind, EngineFaultPlan, Fault, FaultInjector, FaultKind, FaultPlan,
        FaultySensorBank,
    };
    pub use gbt::{GbtModel, GbtParams, TrainMethod};
    pub use hotgauge::{Pipeline, PipelineConfig, Severity, SeverityParams};
    pub use obs::{FlightEvent, FlightRecorder, Obs, Registry, Tracer};
    pub use serve::{Backend, Response, ServeConfig, Server};
    pub use telemetry::{Dataset, DatasetSpec, FeatureSet};
    pub use workloads::WorkloadSpec;
}
