//! §V-E: memory and performance overhead of the deployed model.
//!
//! Paper accounting: full trees with one 32-bit value per node give
//! < 14 KB of weights; a serial prediction needs `223 × 3 = 669`
//! comparisons plus `222` additions, ~1000 operations.

use boreas_bench::experiments::Experiment;
use std::time::Instant;

fn main() {
    let exp = Experiment::paper().expect("paper config");
    let (model, features) = exp.boreas_model().expect("model");
    let cost = model.cost();

    println!("Sec. V-E: Boreas overhead analysis\n");
    println!(
        "trees x depth:       {} x {}",
        model.num_trees(),
        model.params().max_depth
    );
    println!(
        "weight bytes:        {} ({:.2} KB; paper: < 14 KB)",
        cost.weight_bytes,
        cost.weight_bytes as f64 / 1024.0
    );
    println!("comparisons/predict: {} (paper: 669)", cost.comparisons);
    println!("additions/predict:   {} (paper: 222)", cost.additions);
    println!("total ops/predict:   {} (paper: ~1000)", cost.total_ops());

    // Software prediction latency for reference.
    let row = vec![0.5; features.len()];
    let n = 100_000;
    let t0 = Instant::now();
    let mut acc = 0.0;
    for _ in 0..n {
        acc += model.predict(&row);
    }
    let dt = t0.elapsed();
    println!(
        "\nsoftware prediction latency: {:.2} ns/prediction ({} runs, checksum {:.3})",
        dt.as_nanos() as f64 / n as f64,
        n,
        acc / n as f64
    );
    println!(
        "at 1 prediction per 960 us decision interval the runtime cost is negligible; \
         a parallel hardware implementation divides the serial op count by its issue width"
    );
}
