//! The voltage/frequency operating-point table (Table I).
//!
//! The paper sweeps 2.0–5.0 GHz in 250 MHz steps; Table I gives voltages
//! at the 500 MHz points and the intermediate steps use linear
//! interpolation. 3.75 GHz is the *baseline*: the highest globally safe
//! frequency of Fig. 2, to which all performance numbers are normalised.

use common::units::{GigaHertz, Volts};
use common::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One voltage/frequency operating point.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct VfPoint {
    /// Clock frequency.
    pub frequency: GigaHertz,
    /// Supply voltage at that frequency.
    pub voltage: Volts,
}

impl fmt::Display for VfPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} GHz @ {:.3} V",
            self.frequency.value(),
            self.voltage.value()
        )
    }
}

impl VfPoint {
    /// The paper's baseline operating point (3.75 GHz), safe for every
    /// workload in Fig. 2.
    pub fn baseline() -> VfPoint {
        VfTable::paper().points()[VfTable::BASELINE_INDEX]
    }

    /// The table point closest in frequency to `freq`.
    pub fn closest(freq: GigaHertz) -> VfPoint {
        let table = VfTable::paper();
        *table
            .points()
            .iter()
            .min_by(|a, b| {
                (a.frequency - freq)
                    .abs()
                    .partial_cmp(&(b.frequency - freq).abs())
                    .expect("finite")
            })
            .expect("table is non-empty")
    }
}

/// The ordered table of legal operating points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VfTable {
    points: Vec<VfPoint>,
}

impl VfTable {
    /// Index of the 3.75 GHz baseline in the paper table.
    pub const BASELINE_INDEX: usize = 7;

    /// Builds the paper's table: Table I anchors at 500 MHz steps with
    /// linearly interpolated voltages at the 250 MHz midpoints.
    pub fn paper() -> Self {
        let anchors: [(f64, f64); 7] = [
            (2.0, 0.64),
            (2.5, 0.71),
            (3.0, 0.77),
            (3.5, 0.87),
            (4.0, 0.98),
            (4.5, 1.15),
            (5.0, 1.4),
        ];
        let mut points = Vec::with_capacity(13);
        for pair in anchors.windows(2) {
            let (f0, v0) = pair[0];
            let (f1, v1) = pair[1];
            points.push(VfPoint {
                frequency: GigaHertz::new(f0),
                voltage: Volts::new(v0),
            });
            points.push(VfPoint {
                frequency: GigaHertz::new((f0 + f1) / 2.0),
                voltage: Volts::new((v0 + v1) / 2.0),
            });
        }
        let (fl, vl) = anchors[anchors.len() - 1];
        points.push(VfPoint {
            frequency: GigaHertz::new(fl),
            voltage: Volts::new(vl),
        });
        Self { points }
    }

    /// Builds a table from explicit points.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the table is empty or not
    /// strictly ascending in frequency.
    pub fn new(points: Vec<VfPoint>) -> Result<Self> {
        if points.is_empty() {
            return Err(Error::invalid_config("vf_table", "table cannot be empty"));
        }
        for pair in points.windows(2) {
            if pair[1].frequency <= pair[0].frequency {
                return Err(Error::invalid_config(
                    "vf_table",
                    "frequencies must be strictly ascending",
                ));
            }
        }
        Ok(Self { points })
    }

    /// The operating points, ascending in frequency.
    pub fn points(&self) -> &[VfPoint] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the table has no points (cannot happen via constructors).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The point at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn point(&self, idx: usize) -> VfPoint {
        self.points[idx]
    }

    /// Index of the table point matching `freq` (within 1 MHz).
    pub fn index_of(&self, freq: GigaHertz) -> Option<usize> {
        self.points
            .iter()
            .position(|p| (p.frequency - freq).abs().value() < 1e-3)
    }

    /// Voltage for a table frequency.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] if `freq` is not in the table.
    pub fn voltage_for(&self, freq: GigaHertz) -> Result<Volts> {
        self.index_of(freq)
            .map(|i| self.points[i].voltage)
            .ok_or_else(|| Error::not_found("vf point", format!("{freq}")))
    }

    /// Index one step up, clamped to the top of the table.
    pub fn step_up(&self, idx: usize) -> usize {
        (idx + 1).min(self.points.len() - 1)
    }

    /// Index one step down, clamped to the bottom of the table.
    pub fn step_down(&self, idx: usize) -> usize {
        idx.saturating_sub(1)
    }

    /// Index of the highest frequency not exceeding `freq`, or 0.
    pub fn floor_index(&self, freq: GigaHertz) -> usize {
        let mut best = 0;
        for (i, p) in self.points.iter().enumerate() {
            if p.frequency <= freq {
                best = i;
            }
        }
        best
    }
}

impl Default for VfTable {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_matches_table_i() {
        let t = VfTable::paper();
        assert_eq!(t.len(), 13);
        let first = t.point(0);
        assert_eq!(first.frequency.value(), 2.0);
        assert_eq!(first.voltage.value(), 0.64);
        let last = t.point(12);
        assert_eq!(last.frequency.value(), 5.0);
        assert_eq!(last.voltage.value(), 1.4);
        // Anchors from Table I.
        for (f, v) in [
            (2.5, 0.71),
            (3.0, 0.77),
            (3.5, 0.87),
            (4.0, 0.98),
            (4.5, 1.15),
        ] {
            let idx = t.index_of(GigaHertz::new(f)).unwrap();
            assert_eq!(t.point(idx).voltage.value(), v, "voltage at {f} GHz");
        }
    }

    #[test]
    fn steps_are_250_mhz_and_voltage_monotone() {
        let t = VfTable::paper();
        for pair in t.points().windows(2) {
            assert!(((pair[1].frequency - pair[0].frequency).value() - 0.25).abs() < 1e-12);
            assert!(pair[1].voltage > pair[0].voltage);
        }
    }

    #[test]
    fn baseline_is_3_75() {
        let t = VfTable::paper();
        assert_eq!(t.point(VfTable::BASELINE_INDEX).frequency.value(), 3.75);
        assert_eq!(VfPoint::baseline().frequency.value(), 3.75);
        assert!((VfPoint::baseline().voltage.value() - 0.925).abs() < 1e-12);
    }

    #[test]
    fn step_up_down_clamp() {
        let t = VfTable::paper();
        assert_eq!(t.step_up(12), 12);
        assert_eq!(t.step_down(0), 0);
        assert_eq!(t.step_up(3), 4);
        assert_eq!(t.step_down(3), 2);
    }

    #[test]
    fn closest_and_floor() {
        assert_eq!(VfPoint::closest(GigaHertz::new(4.6)).frequency.value(), 4.5);
        assert_eq!(
            VfPoint::closest(GigaHertz::new(10.0)).frequency.value(),
            5.0
        );
        let t = VfTable::paper();
        assert_eq!(
            t.floor_index(GigaHertz::new(4.6)),
            t.index_of(GigaHertz::new(4.5)).unwrap()
        );
        assert_eq!(t.floor_index(GigaHertz::new(1.0)), 0);
    }

    #[test]
    fn voltage_lookup_errors_for_unknown_frequency() {
        let t = VfTable::paper();
        assert!(t.voltage_for(GigaHertz::new(3.1)).is_err());
        assert!(t.voltage_for(GigaHertz::new(3.25)).is_ok());
    }

    #[test]
    fn new_validates_ordering() {
        let p = |f: f64, v: f64| VfPoint {
            frequency: GigaHertz::new(f),
            voltage: Volts::new(v),
        };
        assert!(VfTable::new(vec![]).is_err());
        assert!(VfTable::new(vec![p(2.0, 0.6), p(1.5, 0.5)]).is_err());
        assert!(VfTable::new(vec![p(2.0, 0.6), p(2.5, 0.7)]).is_ok());
    }
}
