/root/repo/target/debug/deps/table3_split-6a8c7c681ec2f753.d: crates/bench/src/bin/table3_split.rs

/root/repo/target/debug/deps/table3_split-6a8c7c681ec2f753: crates/bench/src/bin/table3_split.rs

crates/bench/src/bin/table3_split.rs:
