/root/repo/target/debug/deps/fig5_sensor_placement-3181cb211e352f57.d: crates/bench/src/bin/fig5_sensor_placement.rs

/root/repo/target/debug/deps/fig5_sensor_placement-3181cb211e352f57: crates/bench/src/bin/fig5_sensor_placement.rs

crates/bench/src/bin/fig5_sensor_placement.rs:
