/root/repo/target/debug/deps/faults_integration-6b6f7a47d04332ef.d: tests/faults_integration.rs Cargo.toml

/root/repo/target/debug/deps/libfaults_integration-6b6f7a47d04332ef.rmeta: tests/faults_integration.rs Cargo.toml

tests/faults_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
