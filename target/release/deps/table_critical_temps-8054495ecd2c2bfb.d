/root/repo/target/release/deps/table_critical_temps-8054495ecd2c2bfb.d: crates/bench/src/bin/table_critical_temps.rs

/root/repo/target/release/deps/table_critical_temps-8054495ecd2c2bfb: crates/bench/src/bin/table_critical_temps.rs

crates/bench/src/bin/table_critical_temps.rs:
