/root/repo/target/debug/deps/boreas_thermal-f411410f4feab901.d: crates/thermal/src/lib.rs crates/thermal/src/config.rs crates/thermal/src/sensor.rs crates/thermal/src/solver.rs

/root/repo/target/debug/deps/libboreas_thermal-f411410f4feab901.rlib: crates/thermal/src/lib.rs crates/thermal/src/config.rs crates/thermal/src/sensor.rs crates/thermal/src/solver.rs

/root/repo/target/debug/deps/libboreas_thermal-f411410f4feab901.rmeta: crates/thermal/src/lib.rs crates/thermal/src/config.rs crates/thermal/src/sensor.rs crates/thermal/src/solver.rs

crates/thermal/src/lib.rs:
crates/thermal/src/config.rs:
crates/thermal/src/sensor.rs:
crates/thermal/src/solver.rs:
