/root/repo/target/debug/deps/boreas_floorplan-e6dd1248129a67e7.d: crates/floorplan/src/lib.rs crates/floorplan/src/grid.rs crates/floorplan/src/placement.rs crates/floorplan/src/plan.rs crates/floorplan/src/rect.rs crates/floorplan/src/unit.rs

/root/repo/target/debug/deps/boreas_floorplan-e6dd1248129a67e7: crates/floorplan/src/lib.rs crates/floorplan/src/grid.rs crates/floorplan/src/placement.rs crates/floorplan/src/plan.rs crates/floorplan/src/rect.rs crates/floorplan/src/unit.rs

crates/floorplan/src/lib.rs:
crates/floorplan/src/grid.rs:
crates/floorplan/src/placement.rs:
crates/floorplan/src/plan.rs:
crates/floorplan/src/rect.rs:
crates/floorplan/src/unit.rs:
