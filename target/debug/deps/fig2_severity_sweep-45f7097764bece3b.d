/root/repo/target/debug/deps/fig2_severity_sweep-45f7097764bece3b.d: crates/bench/src/bin/fig2_severity_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_severity_sweep-45f7097764bece3b.rmeta: crates/bench/src/bin/fig2_severity_sweep.rs Cargo.toml

crates/bench/src/bin/fig2_severity_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
