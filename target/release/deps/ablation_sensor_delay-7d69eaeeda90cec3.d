/root/repo/target/release/deps/ablation_sensor_delay-7d69eaeeda90cec3.d: crates/bench/src/bin/ablation_sensor_delay.rs

/root/repo/target/release/deps/ablation_sensor_delay-7d69eaeeda90cec3: crates/bench/src/bin/ablation_sensor_delay.rs

crates/bench/src/bin/ablation_sensor_delay.rs:
