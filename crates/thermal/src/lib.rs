//! Compact thermal model of the die and package.
//!
//! Substitute for the HotSpot-class solver inside HotGauge (see
//! DESIGN.md): the die is an RC network on the floorplan grid — each cell
//! has a heat capacity, lateral silicon conduction to its 4-neighbours,
//! and a vertical conduction path into a lumped package/heat-spreader node
//! that leaks to ambient through a heatsink conductance. Explicit
//! integration with automatic sub-stepping keeps the solver stable at the
//! pipeline's 80 µs step.
//!
//! The model reproduces the thermal behaviours the paper's experiments
//! rely on:
//!
//! * localized heating — unit-sized power concentrations produce tens of
//!   degrees of *local* temperature contrast (the MLTD that drives
//!   Hotspot-Severity);
//! * fast transients — sub-millisecond bursts raise local temperature
//!   quickly, which is why delayed sensors miss advanced hotspots;
//! * slow bulk heating — the package node integrates average power over
//!   milliseconds.
//!
//! [`sensor`] adds the measurement layer: sensors placed at
//! [`floorplan::SensorSite`]s report the die temperature **with delay**
//! (the paper's 180 µs / 960 µs study) and quantisation.
//!
//! # Examples
//!
//! ```
//! use boreas_thermal::{ThermalConfig, ThermalGrid};
//! use floorplan::{Floorplan, Grid, GridSpec};
//!
//! let grid = Grid::rasterize(&Floorplan::skylake_like(), GridSpec::default())?;
//! let mut t = ThermalGrid::new(&grid, ThermalConfig::default());
//! let power = vec![0.02; grid.spec().cells()]; // 20 mW per cell
//! t.step(&power, 80.0)?;
//! assert!(t.max_temp().value() >= t.config().ambient.value());
//! # Ok::<(), common::Error>(())
//! ```

pub mod config;
pub mod sensor;
pub mod solver;

pub use config::ThermalConfig;
pub use sensor::{Sensor, SensorBank, SensorReading};
pub use solver::ThermalGrid;
