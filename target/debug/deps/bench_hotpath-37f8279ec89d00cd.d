/root/repo/target/debug/deps/bench_hotpath-37f8279ec89d00cd.d: crates/bench/src/bin/bench_hotpath.rs

/root/repo/target/debug/deps/bench_hotpath-37f8279ec89d00cd: crates/bench/src/bin/bench_hotpath.rs

crates/bench/src/bin/bench_hotpath.rs:
