//! Small statistics helpers shared by the model-evaluation and reporting
//! code: mean/variance, MSE-style metrics and an online accumulator.

/// Arithmetic mean of a slice; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance of a slice; `0.0` for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Mean squared error between predictions and targets.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mse(pred: &[f64], target: &[f64]) -> f64 {
    assert_eq!(pred.len(), target.len(), "mse: length mismatch");
    assert!(!pred.is_empty(), "mse: empty input");
    pred.iter()
        .zip(target)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64
}

/// Mean absolute error between predictions and targets.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mae(pred: &[f64], target: &[f64]) -> f64 {
    assert_eq!(pred.len(), target.len(), "mae: length mismatch");
    assert!(!pred.is_empty(), "mae: empty input");
    pred.iter()
        .zip(target)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Coefficient of determination (R²). Returns `f64::NEG_INFINITY`-free
/// values: a constant target yields 0 when predictions are exact, else a
/// negative score.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn r2(pred: &[f64], target: &[f64]) -> f64 {
    assert_eq!(pred.len(), target.len(), "r2: length mismatch");
    assert!(!pred.is_empty(), "r2: empty input");
    let m = mean(target);
    let ss_res: f64 = pred
        .iter()
        .zip(target)
        .map(|(p, t)| (t - p) * (t - p))
        .sum();
    let ss_tot: f64 = target.iter().map(|t| (t - m) * (t - m)).sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            return 0.0;
        }
        return -ss_res;
    }
    1.0 - ss_res / ss_tot
}

/// Online accumulator for running mean / variance / extrema (Welford).
///
/// # Examples
///
/// ```
/// use boreas_common::stats::Accumulator;
///
/// let mut acc = Accumulator::new();
/// for x in [1.0, 2.0, 3.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.mean(), 2.0);
/// assert_eq!(acc.max(), Some(3.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Accumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Running population variance (0 for fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Running population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<f64> {
        self.max
    }
}

impl Extend<f64> for Accumulator {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Accumulator {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut acc = Accumulator::new();
        acc.extend(iter);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
    }

    #[test]
    fn mse_mae_r2() {
        let t = [1.0, 2.0, 3.0];
        let p = [1.0, 2.0, 3.0];
        assert_eq!(mse(&p, &t), 0.0);
        assert_eq!(mae(&p, &t), 0.0);
        assert_eq!(r2(&p, &t), 1.0);

        let p2 = [2.0, 2.0, 2.0]; // predicting the mean
        assert!((r2(&p2, &t) - 0.0).abs() < 1e-12);
        assert!((mse(&p2, &t) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn accumulator_matches_batch() {
        let xs = [1.0, 4.0, -2.0, 8.5, 3.25];
        let acc: Accumulator = xs.iter().copied().collect();
        assert_eq!(acc.count(), 5);
        assert!((acc.mean() - mean(&xs)).abs() < 1e-12);
        assert!((acc.variance() - variance(&xs)).abs() < 1e-12);
        assert_eq!(acc.min(), Some(-2.0));
        assert_eq!(acc.max(), Some(8.5));
    }

    #[test]
    fn accumulator_empty() {
        let acc = Accumulator::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.min(), None);
        assert_eq!(acc.max(), None);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mse_length_mismatch_panics() {
        mse(&[1.0], &[1.0, 2.0]);
    }
}
