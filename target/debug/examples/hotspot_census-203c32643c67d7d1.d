/root/repo/target/debug/examples/hotspot_census-203c32643c67d7d1.d: examples/hotspot_census.rs Cargo.toml

/root/repo/target/debug/examples/libhotspot_census-203c32643c67d7d1.rmeta: examples/hotspot_census.rs Cargo.toml

examples/hotspot_census.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
