/root/repo/target/debug/deps/fig7_avg_frequency-91efa7d70dcf52f7.d: crates/bench/src/bin/fig7_avg_frequency.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_avg_frequency-91efa7d70dcf52f7.rmeta: crates/bench/src/bin/fig7_avg_frequency.rs Cargo.toml

crates/bench/src/bin/fig7_avg_frequency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
