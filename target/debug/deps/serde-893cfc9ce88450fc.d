/root/repo/target/debug/deps/serde-893cfc9ce88450fc.d: /tmp/vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-893cfc9ce88450fc.rmeta: /tmp/vendor/serde/src/lib.rs

/tmp/vendor/serde/src/lib.rs:
