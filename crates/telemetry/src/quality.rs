//! Telemetry plausibility checks.
//!
//! A telemetry-driven controller is only as good as its inputs: a stuck
//! sensor, a dropped sample or a corrupted counter block silently turns a
//! careful policy into a random one. This module defines *what counts as
//! a plausible observation* — physically bounded temperatures, bounded
//! rate of change between consecutive samples, sane counters — so the
//! control layer (`boreas_core::ResilientController`) can decide *what to
//! do* when observations stop being plausible.
//!
//! The checks are deliberately cheap (a handful of comparisons per 80 µs
//! record) so they can run inside the 960 µs decision loop.

use common::{Error, Result};
use hotgauge::StepRecord;
use perfsim::{CounterId, IntervalCounters};
use serde::{Deserialize, Serialize};

/// Bounds separating plausible from implausible telemetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityPolicy {
    /// Lowest believable sensor temperature, °C (below even a chilled
    /// ambient).
    pub temp_min_c: f64,
    /// Highest believable sensor temperature, °C (well above any
    /// survivable junction temperature).
    pub temp_max_c: f64,
    /// Largest believable change of one sensor between two consecutive
    /// 80 µs samples, °C. Even an advanced hotspot moves the die a
    /// fraction of a degree per step; a larger jump is a glitch.
    pub max_step_delta_c: f64,
    /// Smallest believable `total_cycles` for an 80 µs interval (a live
    /// core at 2 GHz retires 160 k cycles; an all-zero counter block is a
    /// dropped telemetry packet, not an idle core).
    pub min_cycles: f64,
}

impl Default for QualityPolicy {
    fn default() -> Self {
        Self {
            temp_min_c: 0.0,
            temp_max_c: 130.0,
            max_step_delta_c: 4.0,
            min_cycles: 1.0,
        }
    }
}

impl QualityPolicy {
    /// Checks the policy's own consistency.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for non-finite bounds, an empty
    /// temperature range, or a non-positive rate-of-change bound.
    pub fn validate(&self) -> Result<()> {
        if !(self.temp_min_c.is_finite() && self.temp_max_c.is_finite())
            || self.temp_min_c >= self.temp_max_c
        {
            return Err(Error::invalid_config(
                "quality policy",
                format!(
                    "temperature range [{}, {}] is empty or non-finite",
                    self.temp_min_c, self.temp_max_c
                ),
            ));
        }
        if !(self.max_step_delta_c.is_finite() && self.max_step_delta_c > 0.0) {
            return Err(Error::invalid_config(
                "quality policy",
                format!("rate-of-change bound {} invalid", self.max_step_delta_c),
            ));
        }
        if !(self.min_cycles.is_finite() && self.min_cycles >= 0.0) {
            return Err(Error::invalid_config(
                "quality policy",
                format!("cycle floor {} invalid", self.min_cycles),
            ));
        }
        Ok(())
    }

    /// `true` when a single sensor reading is believable: finite, inside
    /// the physical range, and (when a previous accepted reading for the
    /// same sensor is known) within the rate-of-change bound.
    pub fn reading_plausible(&self, prev_c: Option<f64>, value_c: f64) -> bool {
        if !value_c.is_finite() || value_c < self.temp_min_c || value_c > self.temp_max_c {
            return false;
        }
        match prev_c {
            Some(p) => (value_c - p).abs() <= self.max_step_delta_c,
            None => true,
        }
    }

    /// `true` when an interval's counter block is believable: every
    /// counter finite and non-negative, and the cycle count consistent
    /// with a core that actually ran.
    pub fn counters_plausible(&self, counters: &IntervalCounters) -> bool {
        counters.is_sane() && counters.get(CounterId::TotalCycles) >= self.min_cycles
    }

    /// `true` when every observable of `record` is believable, checking
    /// rate of change against `prev` (the previous record of the same
    /// run, if any).
    pub fn record_plausible(&self, prev: Option<&StepRecord>, record: &StepRecord) -> bool {
        if !self.counters_plausible(&record.counters) {
            return false;
        }
        record.sensor_temps.iter().enumerate().all(|(i, t)| {
            let prev_c = prev.and_then(|p| p.sensor_temps.get(i)).map(|t| t.value());
            self.reading_plausible(prev_c, t.value())
        })
    }
}

/// Fraction of records in `records` that are fully plausible under
/// `policy` (1.0 for an empty slice). Rate-of-change is checked between
/// consecutive records of the slice.
pub fn interval_quality(policy: &QualityPolicy, records: &[StepRecord]) -> f64 {
    if records.is_empty() {
        return 1.0;
    }
    let mut good = 0usize;
    let mut prev: Option<&StepRecord> = None;
    for r in records {
        if policy.record_plausible(prev, r) {
            good += 1;
        }
        prev = Some(r);
    }
    good as f64 / records.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::time::SimTime;
    use common::units::{Celsius, GigaHertz, Volts, Watts};
    use hotgauge::Severity;

    fn record(temps: &[f64], cycles: f64) -> StepRecord {
        let mut counters = IntervalCounters::zeroed();
        counters.set(CounterId::TotalCycles, cycles);
        StepRecord {
            time: SimTime::from_steps(1),
            counters,
            sensor_temps: temps.iter().map(|&t| Celsius::new(t)).collect(),
            max_temp: Celsius::new(60.0),
            max_severity: Severity::new(0.5),
            max_severity_raw: 0.5,
            hotspot_xy: (1.0, 1.0),
            total_power: Watts::new(10.0),
            frequency: GigaHertz::new(3.75),
            voltage: Volts::new(0.925),
        }
    }

    #[test]
    fn default_policy_accepts_ordinary_telemetry() {
        let p = QualityPolicy::default();
        p.validate().unwrap();
        let r = record(&[55.0, 61.25, 58.5], 300_000.0);
        assert!(p.record_plausible(None, &r));
        assert!((interval_quality(&p, &[r.clone(), r]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_finite_and_out_of_range_readings() {
        let p = QualityPolicy::default();
        assert!(!p.reading_plausible(None, f64::NAN));
        assert!(!p.reading_plausible(None, f64::INFINITY));
        assert!(!p.reading_plausible(None, -40.0));
        assert!(!p.reading_plausible(None, 400.0));
        assert!(p.reading_plausible(None, 85.0));
    }

    #[test]
    fn rate_of_change_bound_applies_only_with_history() {
        let p = QualityPolicy::default();
        assert!(p.reading_plausible(None, 95.0));
        assert!(p.reading_plausible(Some(93.0), 95.0));
        assert!(
            !p.reading_plausible(Some(70.0), 95.0),
            "25 C in 80 us is a glitch"
        );
        assert!(
            !p.reading_plausible(Some(95.0), 70.0),
            "downward glitches count too"
        );
    }

    #[test]
    fn zeroed_counters_are_implausible() {
        let p = QualityPolicy::default();
        assert!(!p.counters_plausible(&IntervalCounters::zeroed()));
        let mut c = IntervalCounters::zeroed();
        c.set(CounterId::TotalCycles, 160_000.0);
        assert!(p.counters_plausible(&c));
        c.set(CounterId::BusyCycles, f64::NAN);
        assert!(!p.counters_plausible(&c));
    }

    #[test]
    fn interval_quality_counts_bad_records() {
        let p = QualityPolicy::default();
        let good = record(&[60.0], 200_000.0);
        let dropped = record(&[f64::NAN], 200_000.0);
        let stuck_jump = record(&[45.0], 200_000.0); // 15 C below its predecessor
        let q = interval_quality(&p, &[good.clone(), dropped, stuck_jump, good.clone()]);
        // records 2 and 3 are implausible; record 4 jumps back up from 45.
        assert!(q <= 0.5, "quality {q}");
        assert!(q >= 0.25, "quality {q}");
    }

    #[test]
    fn invalid_policies_rejected() {
        let p = QualityPolicy {
            temp_min_c: 200.0,
            ..QualityPolicy::default()
        };
        assert!(p.validate().is_err());
        let p = QualityPolicy {
            max_step_delta_c: 0.0,
            ..QualityPolicy::default()
        };
        assert!(p.validate().is_err());
        let p = QualityPolicy {
            min_cycles: f64::NAN,
            ..QualityPolicy::default()
        };
        assert!(p.validate().is_err());
    }
}
