/root/repo/target/debug/deps/promlint-1e76c380757a3bd5.d: crates/bench/src/bin/promlint.rs

/root/repo/target/debug/deps/promlint-1e76c380757a3bd5: crates/bench/src/bin/promlint.rs

crates/bench/src/bin/promlint.rs:
