//! Property tests for the statistics helpers.

use boreas_common::stats::{mae, mean, mse, r2, std_dev, variance, Accumulator};
use proptest::prelude::*;

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6..1e6f64, 1..max_len)
}

proptest! {
    #[test]
    fn accumulator_matches_batch_statistics(xs in finite_vec(200)) {
        let acc: Accumulator = xs.iter().copied().collect();
        prop_assert_eq!(acc.count() as usize, xs.len());
        prop_assert!((acc.mean() - mean(&xs)).abs() < 1e-6 * (1.0 + mean(&xs).abs()));
        prop_assert!((acc.variance() - variance(&xs)).abs() < 1e-3 * (1.0 + variance(&xs)));
        prop_assert_eq!(acc.min().unwrap(), xs.iter().cloned().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(acc.max().unwrap(), xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    #[test]
    fn error_metrics_are_nonnegative_and_zero_on_self(xs in finite_vec(100)) {
        prop_assert_eq!(mse(&xs, &xs), 0.0);
        prop_assert_eq!(mae(&xs, &xs), 0.0);
        let shifted: Vec<f64> = xs.iter().map(|x| x + 1.0).collect();
        prop_assert!(mse(&shifted, &xs) > 0.0);
        prop_assert!(mae(&shifted, &xs) > 0.0);
        prop_assert!((mse(&shifted, &xs) - 1.0).abs() < 1e-9, "constant shift of 1 has MSE 1");
    }

    #[test]
    fn r2_is_bounded_above_by_one(pred in finite_vec(100)) {
        // Pair the prediction with an arbitrary (deterministic) target of
        // the same length.
        let target: Vec<f64> = (0..pred.len()).map(|i| (i as f64).sin() * 10.0).collect();
        let r = r2(&pred, &target);
        prop_assert!(r <= 1.0 + 1e-12);
    }

    #[test]
    fn std_dev_scales_linearly(xs in finite_vec(100), k in 0.1..10.0f64) {
        let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
        let lhs = std_dev(&scaled);
        let rhs = k * std_dev(&xs);
        prop_assert!((lhs - rhs).abs() <= 1e-6 * (1.0 + rhs.abs()));
    }

    #[test]
    fn mean_is_translation_equivariant(xs in finite_vec(100), c in -1e3..1e3f64) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + c).collect();
        prop_assert!((mean(&shifted) - (mean(&xs) + c)).abs() < 1e-6);
    }
}
