/root/repo/target/debug/deps/boreas_baselines-28656d4e60f462b4.d: crates/baselines/src/lib.rs crates/baselines/src/cochran_reda.rs crates/baselines/src/kmeans.rs crates/baselines/src/linreg.rs crates/baselines/src/pca.rs

/root/repo/target/debug/deps/boreas_baselines-28656d4e60f462b4: crates/baselines/src/lib.rs crates/baselines/src/cochran_reda.rs crates/baselines/src/kmeans.rs crates/baselines/src/linreg.rs crates/baselines/src/pca.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cochran_reda.rs:
crates/baselines/src/kmeans.rs:
crates/baselines/src/linreg.rs:
crates/baselines/src/pca.rs:
