//! Fig. 8: dynamic closed-loop traces of every unseen test workload
//! under TH-00 and Boreas (ML05) for 150 timesteps (12 ms).
//!
//! Paper shape: Boreas runs at the same frequency or one-two 250 MHz
//! steps above the thermal model (except hmmer), and no test workload
//! ever reaches severity 1.0 under either controller.
//!
//! Both controllers over all test workloads form one
//! [`engine::Scenario`]; the per-interval traces come straight off the
//! engine's result rows.
//!
//! Usage: `fig8_dynamic_runs [--smoke] [--threads N] [--metrics-out BASE]`.
//! `--smoke` shrinks the grid to 2 workloads × 48 steps with cheap
//! stand-in controllers (flat 70 °C thermal thresholds, a tiny
//! frequency-only GBT model) so CI can exercise the full
//! engine/controller/observability path in seconds; `--threads` sets
//! both the engine worker count and the trainer thread count (output is
//! bit-identical for every value); `--metrics-out` exports the
//! observability artifacts (`BASE.prom`, `BASE.jsonl`).

use boreas_bench::experiments::{Experiment, LOOP_STEPS};
use boreas_bench::Reporting;
use engine::{ControllerSpec, Scenario};
use workloads::WorkloadSpec;

/// Smoke-mode stand-ins: flat thermal thresholds and a severity ≈
/// frequency/5 model — the paper shape does not hold under them, but
/// every code path (thermal + ML decisions, flight events, metrics)
/// still runs.
fn smoke_controllers(vf_len: usize, threads: usize) -> Vec<ControllerSpec> {
    let mut d = gbt::Dataset::new(vec!["frequency_ghz".to_string()]);
    for i in 0..200 {
        let f = 2.0 + 3.0 * (i as f64 / 200.0);
        d.push_row(&[f], f / 5.0, (i % 2) as u32)
            .expect("synthetic row");
    }
    let model = gbt::TrainSpec::new(&d)
        .params(gbt::GbtParams::default().with_estimators(30))
        .threads(threads)
        .fit()
        .expect("tiny model")
        .model;
    let features = telemetry::FeatureSet::from_names(&["frequency_ghz"]).expect("feature");
    vec![
        ControllerSpec::thermal(vec![Some(70.0); vf_len], 0.0),
        ControllerSpec::ml(model, &features, 0.05),
    ]
}

fn main() {
    let reporting = Reporting::from_args();
    let smoke = reporting.rest().iter().any(|a| a == "--smoke");
    let exp = Experiment::paper()
        .expect("paper config")
        .observe(&reporting.obs);

    let (name, tests, steps, controllers) = if smoke {
        let tests: Vec<WorkloadSpec> = WorkloadSpec::test_set().into_iter().take(2).collect();
        let controllers = smoke_controllers(exp.vf.len(), reporting.threads());
        ("fig8-smoke", tests, 48, controllers)
    } else {
        let thresholds = exp.trained_thresholds().expect("trained thresholds");
        let (model, features) = exp.boreas_model().expect("model");
        let controllers = vec![
            ControllerSpec::thermal(thresholds, 0.0),
            ControllerSpec::ml(model, &features, 0.05),
        ];
        (
            "fig8-dynamic-runs",
            WorkloadSpec::test_set(),
            LOOP_STEPS,
            controllers,
        )
    };

    let scenario = Scenario::closed_loop(name, tests.clone(), exp.vf.clone(), steps, controllers);
    let mut session = exp.session().expect("session");
    if reporting.threads() > 0 {
        session = session.threads(reporting.threads());
    }
    let report = reporting
        .execute(&session, &scenario)
        .expect("dynamic runs");
    let rows: Vec<_> = report.loop_runs().collect();

    let mut any_incursion = false;
    for (w_idx, w) in tests.iter().enumerate() {
        println!("== {}", w.name);
        let pair = &rows[w_idx * 2..w_idx * 2 + 2];
        for row in pair {
            assert_eq!(row.workload, w.name, "engine row order");
            println!(
                "  {:<6} avg {:.3} GHz, peak severity {:.3}, incursions {}",
                row.controller, row.avg_frequency_ghz, row.peak_severity, row.incursions
            );
            print!("    f(GHz):  ");
            for f in &row.interval_freq_ghz {
                print!("{f:.2} ");
            }
            println!();
            print!("    max sev: ");
            for s in &row.interval_peak_severity {
                print!("{s:.2} ");
            }
            println!();
            any_incursion |= row.incursions > 0;
        }
        println!(
            "  Boreas vs TH-00: {:+.1}%\n",
            (pair[1].avg_frequency_ghz / pair[0].avg_frequency_ghz - 1.0) * 100.0
        );
    }
    println!(
        "any incursion across all test workloads and both controllers: {} (paper: none)",
        if any_incursion { "YES (!)" } else { "no" }
    );

    reporting.finish(Some(&report)).expect("reporting");
}
