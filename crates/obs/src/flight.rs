//! Bounded per-run flight recorder for control decisions.
//!
//! The [`FlightRecorder`] keeps a ring buffer of typed [`FlightEvent`]s
//! — one per control decision, degradation transition or injected fault
//! — tagged with the `(workload, controller)` run they came from. When
//! the buffer is full the *oldest* events are dropped (and counted), so
//! a long campaign keeps its most recent history instead of aborting or
//! growing without bound.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Default event capacity of an enabled recorder.
pub const DEFAULT_CAPACITY: usize = 4096;

/// Identifies the run an event belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// Workload name.
    pub workload: String,
    /// Controller label.
    pub controller: String,
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub enum FlightEvent {
    /// A controller decision at the end of a decision interval.
    Decision {
        /// Decision interval index (0-based).
        interval: usize,
        /// VF index before the decision.
        from_idx: usize,
        /// VF index chosen.
        to_idx: usize,
        /// ML severity prediction backing the decision, if any.
        predicted_severity: Option<f64>,
        /// Guardband in effect, if any.
        guardband: Option<f64>,
        /// Margin between the decision threshold and the prediction
        /// (positive = headroom), if both are known.
        margin: Option<f64>,
    },
    /// A resilience-stage transition.
    Degradation {
        /// Decision interval index.
        interval: usize,
        /// Stage before the transition.
        from: String,
        /// Stage after the transition.
        to: String,
        /// Telemetry quality that triggered it.
        quality: f64,
    },
    /// A fault fired on the telemetry path.
    FaultInjected {
        /// Simulation step index.
        step: usize,
        /// Fault kind label.
        kind: String,
        /// Sensor lane, for sensor faults.
        sensor: Option<usize>,
    },
    /// An engine job panicked and was contained by the pool.
    JobPanicked {
        /// Job index in the scenario's expansion order.
        index: usize,
        /// 0-based attempt that panicked.
        attempt: usize,
        /// Downcast panic message.
        message: String,
    },
    /// A failed engine job was re-dispatched by the supervisor.
    JobRetried {
        /// Job index in the scenario's expansion order.
        index: usize,
        /// 0-based attempt about to run.
        attempt: usize,
    },
    /// An integrity-checked cache read found a corrupt artifact and
    /// quarantined it.
    ArtifactCorrupt {
        /// Content key of the damaged artifact.
        key: String,
    },
    /// A session resumed from a checkpoint manifest instead of starting
    /// cold.
    Resumed {
        /// Jobs restored from the manifest + cache.
        jobs_resumed: usize,
        /// Total jobs in the scenario.
        jobs_total: usize,
    },
}

/// A recorded event together with its run and sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedEvent {
    /// Global sequence number (monotonic across runs, survives drops).
    pub seq: u64,
    /// The run this event belongs to.
    pub run: Arc<RunMeta>,
    /// The event payload.
    pub event: FlightEvent,
}

#[derive(Debug, Default)]
struct FlightState {
    events: VecDeque<RecordedEvent>,
    dropped: u64,
    seq: u64,
}

#[derive(Debug)]
struct FlightInner {
    cap: usize,
    state: Mutex<FlightState>,
}

/// Bounded event recorder. Cloning shares the buffer; a disabled
/// recorder ([`FlightRecorder::disabled`]) drops everything for free.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<FlightInner>>,
}

impl FlightRecorder {
    /// An enabled recorder with [`DEFAULT_CAPACITY`].
    pub fn new() -> FlightRecorder {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// An enabled recorder keeping at most `cap` events (min 1).
    pub fn with_capacity(cap: usize) -> FlightRecorder {
        FlightRecorder {
            inner: Some(Arc::new(FlightInner {
                cap: cap.max(1),
                state: Mutex::default(),
            })),
        }
    }

    /// A recorder that records nothing.
    pub fn disabled() -> FlightRecorder {
        FlightRecorder { inner: None }
    }

    /// `true` when events are actually kept.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a run scope; events recorded through the returned [`RunLog`]
    /// are tagged with `(workload, controller)`.
    pub fn run(&self, workload: &str, controller: &str) -> RunLog {
        RunLog {
            recorder: self.clone(),
            meta: Arc::new(RunMeta {
                workload: workload.to_string(),
                controller: controller.to_string(),
            }),
        }
    }

    fn push(&self, run: &Arc<RunMeta>, event: FlightEvent) {
        let inner = match &self.inner {
            Some(i) => i,
            None => return,
        };
        let mut state = inner.state.lock().expect("flight recorder poisoned");
        let seq = state.seq;
        state.seq += 1;
        if state.events.len() == inner.cap {
            state.events.pop_front();
            state.dropped += 1;
        }
        state.events.push_back(RecordedEvent {
            seq,
            run: run.clone(),
            event,
        });
    }

    /// Copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<RecordedEvent> {
        match &self.inner {
            Some(i) => i
                .state
                .lock()
                .expect("flight recorder poisoned")
                .events
                .iter()
                .cloned()
                .collect(),
            None => Vec::new(),
        }
    }

    /// How many events were evicted to stay within capacity.
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            Some(i) => i.state.lock().expect("flight recorder poisoned").dropped,
            None => 0,
        }
    }
}

/// Scope handle tagging events with one run's `(workload, controller)`.
#[derive(Debug, Clone)]
pub struct RunLog {
    recorder: FlightRecorder,
    meta: Arc<RunMeta>,
}

impl RunLog {
    /// Records one event for this run.
    pub fn record(&self, event: FlightEvent) {
        self.recorder.push(&self.meta, event);
    }

    /// `true` when recording actually stores anything.
    pub fn is_enabled(&self) -> bool {
        self.recorder.is_enabled()
    }

    /// The run's metadata.
    pub fn meta(&self) -> &RunMeta {
        &self.meta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_tagged_events_in_order() {
        let fr = FlightRecorder::new();
        let run = fr.run("gcc", "ML05");
        run.record(FlightEvent::Decision {
            interval: 0,
            from_idx: 12,
            to_idx: 11,
            predicted_severity: Some(0.97),
            guardband: Some(0.05),
            margin: Some(-0.02),
        });
        run.record(FlightEvent::Degradation {
            interval: 1,
            from: "primary".into(),
            to: "thermal-fallback".into(),
            quality: 0.5,
        });
        let events = fr.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[0].run.workload, "gcc");
        assert_eq!(events[0].run.controller, "ML05");
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let fr = FlightRecorder::with_capacity(3);
        let run = fr.run("w", "c");
        for i in 0..5 {
            run.record(FlightEvent::FaultInjected {
                step: i,
                kind: "dropped".into(),
                sensor: Some(0),
            });
        }
        let events = fr.events();
        assert_eq!(events.len(), 3);
        assert_eq!(fr.dropped(), 2);
        // Oldest two evicted; sequence numbers keep counting.
        assert_eq!(events[0].seq, 2);
        assert_eq!(events[2].seq, 4);
    }

    #[test]
    fn disabled_recorder_is_free() {
        let fr = FlightRecorder::disabled();
        let run = fr.run("w", "c");
        assert!(!run.is_enabled());
        run.record(FlightEvent::FaultInjected {
            step: 0,
            kind: "noise".into(),
            sensor: None,
        });
        assert!(fr.events().is_empty());
        assert_eq!(fr.dropped(), 0);
    }
}
