/root/repo/target/debug/deps/boreas_telemetry-20bd8f5dd5126507.d: crates/telemetry/src/lib.rs crates/telemetry/src/dataset.rs crates/telemetry/src/features.rs crates/telemetry/src/quality.rs crates/telemetry/src/selection.rs crates/telemetry/src/split.rs

/root/repo/target/debug/deps/libboreas_telemetry-20bd8f5dd5126507.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/dataset.rs crates/telemetry/src/features.rs crates/telemetry/src/quality.rs crates/telemetry/src/selection.rs crates/telemetry/src/split.rs

/root/repo/target/debug/deps/libboreas_telemetry-20bd8f5dd5126507.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/dataset.rs crates/telemetry/src/features.rs crates/telemetry/src/quality.rs crates/telemetry/src/selection.rs crates/telemetry/src/split.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/dataset.rs:
crates/telemetry/src/features.rs:
crates/telemetry/src/quality.rs:
crates/telemetry/src/selection.rs:
crates/telemetry/src/split.rs:
