/root/repo/target/debug/deps/proptest_supervisor-3783404605ec1fbb.d: crates/engine/tests/proptest_supervisor.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_supervisor-3783404605ec1fbb.rmeta: crates/engine/tests/proptest_supervisor.rs Cargo.toml

crates/engine/tests/proptest_supervisor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
