/root/repo/target/debug/deps/engine_integration-76ff9148ddc76689.d: crates/engine/tests/engine_integration.rs

/root/repo/target/debug/deps/engine_integration-76ff9148ddc76689: crates/engine/tests/engine_integration.rs

crates/engine/tests/engine_integration.rs:
