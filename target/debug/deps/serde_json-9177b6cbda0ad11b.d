/root/repo/target/debug/deps/serde_json-9177b6cbda0ad11b.d: /tmp/vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-9177b6cbda0ad11b.rmeta: /tmp/vendor/serde_json/src/lib.rs

/tmp/vendor/serde_json/src/lib.rs:
