/root/repo/target/debug/deps/ablation_sensor_delay-3c736134b1321b68.d: crates/bench/src/bin/ablation_sensor_delay.rs

/root/repo/target/debug/deps/ablation_sensor_delay-3c736134b1321b68: crates/bench/src/bin/ablation_sensor_delay.rs

crates/bench/src/bin/ablation_sensor_delay.rs:
