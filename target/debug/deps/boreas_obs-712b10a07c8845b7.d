/root/repo/target/debug/deps/boreas_obs-712b10a07c8845b7.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/flight.rs crates/obs/src/metrics.rs crates/obs/src/promlint.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libboreas_obs-712b10a07c8845b7.rlib: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/flight.rs crates/obs/src/metrics.rs crates/obs/src/promlint.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libboreas_obs-712b10a07c8845b7.rmeta: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/flight.rs crates/obs/src/metrics.rs crates/obs/src/promlint.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/flight.rs:
crates/obs/src/metrics.rs:
crates/obs/src/promlint.rs:
crates/obs/src/trace.rs:
