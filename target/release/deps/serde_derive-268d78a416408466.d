/root/repo/target/release/deps/serde_derive-268d78a416408466.d: /tmp/vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-268d78a416408466.so: /tmp/vendor/serde_derive/src/lib.rs

/tmp/vendor/serde_derive/src/lib.rs:
