//! The boosted ensemble: training, prediction, importance and cost.

use crate::dataset::Dataset;
use crate::params::GbtParams;
use crate::tree::RegressionTree;
use common::{Error, Result};
use serde::{Deserialize, Serialize};

/// Hardware-cost summary of one prediction (§V-E of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictionCost {
    /// Comparisons to walk every tree root→leaf (`trees × depth`).
    pub comparisons: usize,
    /// Additions to accumulate the leaf values (`trees − 1`).
    pub additions: usize,
    /// Size of the model weights assuming full trees with one 32-bit
    /// value per node — the paper's memory-overhead accounting.
    pub weight_bytes: usize,
}

impl PredictionCost {
    /// Total operation count (comparisons + additions).
    pub fn total_ops(&self) -> usize {
        self.comparisons + self.additions
    }
}

/// A trained gradient-boosted regression ensemble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GbtModel {
    base_score: f64,
    trees: Vec<RegressionTree>,
    params: GbtParams,
    feature_names: Vec<String>,
}

impl GbtModel {
    /// Assembles a model from pre-grown parts (histogram trainer).
    pub(crate) fn from_parts(
        base_score: f64,
        trees: Vec<RegressionTree>,
        params: GbtParams,
        feature_names: Vec<String>,
    ) -> GbtModel {
        GbtModel {
            base_score,
            trees,
            params,
            feature_names,
        }
    }

    /// Trains an ensemble on `data` with the default pipeline: the
    /// histogram trainer of [`crate::TrainSpec`] at automatic thread
    /// count (the result is thread-count invariant). Shorthand for
    /// `TrainSpec::new(data).params(*params).fit()?.model`; use the spec
    /// directly to pick threads, the exact-greedy reference method, or
    /// observability hooks.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyDataset`] for an empty dataset or
    /// [`Error::InvalidConfig`] for invalid hyper-parameters.
    pub fn train(data: &Dataset, params: &GbtParams) -> Result<GbtModel> {
        crate::TrainSpec::new(data)
            .params(*params)
            .fit()
            .map(|r| r.model)
    }

    /// Trains with the seed's single-threaded exact-greedy scan — the
    /// equivalence oracle the histogram trainer is pinned against.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyDataset`] for an empty dataset or
    /// [`Error::InvalidConfig`] for invalid hyper-parameters.
    pub fn train_reference(data: &Dataset, params: &GbtParams) -> Result<GbtModel> {
        params.validate()?;
        if data.is_empty() {
            return Err(Error::EmptyDataset("gbt training set"));
        }
        let n = data.len();
        let base_score = data.targets().iter().sum::<f64>() / n as f64;

        // Presort every feature once; trees reuse the order.
        let presorted: Vec<Vec<u32>> = (0..data.num_features())
            .map(|f| {
                let col = data.column(f);
                let mut idx: Vec<u32> = (0..n as u32).collect();
                idx.sort_by(|&a, &b| {
                    col[a as usize]
                        .partial_cmp(&col[b as usize])
                        .expect("dataset rejects non-finite features")
                });
                idx
            })
            .collect();

        let mut preds = vec![base_score; n];
        let mut grad = vec![0.0f64; n];
        let mut trees = Vec::with_capacity(params.n_estimators);
        let rows: Vec<Vec<f64>> = (0..n).map(|i| data.row(i)).collect();
        for _ in 0..params.n_estimators {
            for i in 0..n {
                grad[i] = preds[i] - data.targets()[i];
            }
            let tree = RegressionTree::fit(data, &grad, &presorted, params);
            for i in 0..n {
                preds[i] += params.learning_rate * tree.predict(&rows[i]);
            }
            trees.push(tree);
        }
        Ok(GbtModel {
            base_score,
            trees,
            params: *params,
            feature_names: data.feature_names().to_vec(),
        })
    }

    /// Predicts one row (same feature order as the training dataset).
    pub fn predict(&self, row: &[f64]) -> f64 {
        self.predict_with(row, self.trees.len())
    }

    /// Predicts using only the first `k` trees (staged prediction, used
    /// for the size/accuracy study of Fig. 9).
    pub fn predict_with(&self, row: &[f64], k: usize) -> f64 {
        let k = k.min(self.trees.len());
        self.base_score
            + self.params.learning_rate
                * self.trees[..k].iter().map(|t| t.predict(row)).sum::<f64>()
    }

    /// Predicts a batch of feature rows in a single tree-outer pass:
    /// each tree of the ensemble is walked once for the whole batch, so
    /// the (hot, small) tree nodes stay cache-resident while the rows
    /// stream through. Bit-identical to calling [`GbtModel::predict`]
    /// per row; this is the engine's batched-inference primitive for
    /// evaluating one interval's candidate operating points in one pass.
    pub fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        let mut sums = vec![0.0f64; rows.len()];
        for tree in &self.trees {
            for (acc, row) in sums.iter_mut().zip(rows) {
                *acc += tree.predict(row);
            }
        }
        sums.into_iter()
            .map(|s| self.base_score + self.params.learning_rate * s)
            .collect()
    }

    /// Predicts every row of a dataset (batched).
    pub fn predict_dataset(&self, data: &Dataset) -> Vec<f64> {
        let rows: Vec<Vec<f64>> = (0..data.len()).map(|i| data.row(i)).collect();
        self.predict_batch(&rows)
    }

    /// Mean squared error on a dataset.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn mse_on(&self, data: &Dataset) -> f64 {
        common::stats::mse(&self.predict_dataset(data), data.targets())
    }

    /// Normalised total-gain importance per feature, descending — the
    /// quantity in Table IV. Features with zero gain are included.
    pub fn feature_importance(&self) -> Vec<(String, f64)> {
        let mut gains = vec![0.0; self.feature_names.len()];
        for t in &self.trees {
            t.accumulate_gain(&mut gains);
        }
        let total: f64 = gains.iter().sum();
        let mut pairs: Vec<(String, f64)> = self
            .feature_names
            .iter()
            .cloned()
            .zip(
                gains
                    .into_iter()
                    .map(|g| if total > 0.0 { g / total } else { 0.0 }),
            )
            .collect();
        pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite gains"));
        pairs
    }

    /// The hardware-cost summary (paper §V-E accounting).
    pub fn cost(&self) -> PredictionCost {
        let n = self.trees.len();
        let full_nodes_per_tree = (1usize << (self.params.max_depth + 1)) - 1;
        PredictionCost {
            comparisons: n * self.params.max_depth,
            additions: n.saturating_sub(1),
            weight_bytes: n * full_nodes_per_tree * 4,
        }
    }

    /// Number of trees in the ensemble.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// The trees themselves.
    pub fn trees(&self) -> &[RegressionTree] {
        &self.trees
    }

    /// The hyper-parameters used for training.
    pub fn params(&self) -> &GbtParams {
        &self.params
    }

    /// Names of the features the model expects, in order.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// The initial prediction (mean of the training targets).
    pub fn base_score(&self) -> f64 {
        self.base_score
    }

    /// Serialises the model to JSON (the form the "hardware" controller
    /// would be provisioned with).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Serde`] on serialisation failure.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| Error::Serde(e.to_string()))
    }

    /// Restores a model from [`GbtModel::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Serde`] on malformed input.
    pub fn from_json(json: &str) -> Result<GbtModel> {
        serde_json::from_str(json).map_err(|e| Error::Serde(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn friedman_like(n: usize) -> Dataset {
        // Deterministic nonlinear target over 3 features.
        let mut d = Dataset::new(vec!["x0".into(), "x1".into(), "x2".into()]);
        for i in 0..n {
            let x0 = (i % 17) as f64 / 17.0;
            let x1 = (i % 29) as f64 / 29.0;
            let x2 = (i % 7) as f64 / 7.0;
            let y = (std::f64::consts::PI * x0).sin() + 2.0 * (x1 - 0.5).powi(2) + 0.5 * x2;
            d.push_row(&[x0, x1, x2], y, (i % 5) as u32).unwrap();
        }
        d
    }

    #[test]
    fn fits_nonlinear_function() {
        let d = friedman_like(2000);
        let params = GbtParams::default().with_estimators(100);
        let model = GbtModel::train(&d, &params).unwrap();
        let mse = model.mse_on(&d);
        assert!(mse < 0.002, "training MSE too high: {mse}");
    }

    #[test]
    fn single_tree_zero_lr_limit_predicts_mean() {
        let d = friedman_like(100);
        let params = GbtParams {
            n_estimators: 1,
            gamma: 1e12, // block all splits -> one leaf
            ..GbtParams::default()
        };
        let model = GbtModel::train(&d, &params).unwrap();
        let mean = d.targets().iter().sum::<f64>() / d.len() as f64;
        // Leaf weight is -G/(H+lambda) ~ 0 residual mean, so prediction ~ base.
        let pred = model.predict(&d.row(0));
        assert!((pred - mean).abs() < 0.05, "pred {pred} vs mean {mean}");
    }

    #[test]
    fn training_mse_is_monotone_in_trees() {
        let d = friedman_like(600);
        let model = GbtModel::train(&d, &GbtParams::default().with_estimators(40)).unwrap();
        let mut last = f64::INFINITY;
        for k in [1, 5, 10, 20, 40] {
            let preds: Vec<f64> = (0..d.len())
                .map(|i| model.predict_with(&d.row(i), k))
                .collect();
            let mse = common::stats::mse(&preds, d.targets());
            assert!(mse <= last + 1e-12, "MSE rose at k={k}: {last} -> {mse}");
            last = mse;
        }
    }

    #[test]
    fn cost_matches_paper_accounting() {
        let d = friedman_like(300);
        let params = GbtParams::default().with_estimators(223).with_depth(3);
        let model = GbtModel::train(&d, &params).unwrap();
        let cost = model.cost();
        assert_eq!(cost.comparisons, 669);
        assert_eq!(cost.additions, 222);
        assert_eq!(cost.weight_bytes, 223 * 15 * 4);
        assert!(cost.weight_bytes < 14 * 1024, "paper: under 14 KB");
        assert!(cost.total_ops() < 1000);
    }

    #[test]
    fn importance_finds_the_informative_feature() {
        // y depends only on x0.
        let mut d = Dataset::new(vec!["x0".into(), "junk".into()]);
        for i in 0..500 {
            let x0 = (i % 23) as f64;
            let junk = ((i * 31) % 101) as f64;
            d.push_row(&[x0, junk], x0 * 3.0, 0).unwrap();
        }
        let model = GbtModel::train(&d, &GbtParams::default().with_estimators(20)).unwrap();
        let imp = model.feature_importance();
        assert_eq!(imp[0].0, "x0");
        assert!(imp[0].1 > 0.95, "x0 importance {}", imp[0].1);
        let total: f64 = imp.iter().map(|(_, g)| g).sum();
        assert!((total - 1.0).abs() < 1e-9, "importance must normalise to 1");
    }

    #[test]
    fn json_roundtrip_preserves_predictions() {
        let d = friedman_like(200);
        let model = GbtModel::train(&d, &GbtParams::default().with_estimators(15)).unwrap();
        let json = model.to_json().unwrap();
        let back = GbtModel::from_json(&json).unwrap();
        for i in (0..d.len()).step_by(37) {
            assert_eq!(model.predict(&d.row(i)), back.predict(&d.row(i)));
        }
        assert!(GbtModel::from_json("{not json").is_err());
    }

    #[test]
    fn batched_prediction_is_bit_identical_to_per_row() {
        let d = friedman_like(300);
        let model = GbtModel::train(&d, &GbtParams::default().with_estimators(25)).unwrap();
        let rows: Vec<Vec<f64>> = (0..d.len()).map(|i| d.row(i)).collect();
        let batched = model.predict_batch(&rows);
        assert_eq!(batched.len(), rows.len());
        for (row, b) in rows.iter().zip(&batched) {
            assert_eq!(model.predict(row).to_bits(), b.to_bits());
        }
        let via_dataset = model.predict_dataset(&d);
        assert_eq!(batched, via_dataset);
        assert!(model.predict_batch(&[]).is_empty());
    }

    #[test]
    fn empty_dataset_is_an_error() {
        let d = Dataset::new(vec!["x".into()]);
        assert!(matches!(
            GbtModel::train(&d, &GbtParams::default()),
            Err(Error::EmptyDataset(_))
        ));
    }

    #[test]
    fn deterministic_training() {
        let d = friedman_like(400);
        let p = GbtParams::default().with_estimators(10);
        let a = GbtModel::train(&d, &p).unwrap();
        let b = GbtModel::train(&d, &p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn generalises_to_unseen_rows_of_same_function() {
        let train = friedman_like(1500);
        let mut test = Dataset::new(vec!["x0".into(), "x1".into(), "x2".into()]);
        for i in 0..200 {
            let x0 = ((i * 3 + 1) % 17) as f64 / 17.0 + 0.013;
            let x1 = ((i * 5 + 2) % 29) as f64 / 29.0 + 0.007;
            let x2 = ((i * 11 + 3) % 7) as f64 / 7.0 + 0.021;
            let y = (std::f64::consts::PI * x0).sin() + 2.0 * (x1 - 0.5).powi(2) + 0.5 * x2;
            test.push_row(&[x0, x1, x2], y, 0).unwrap();
        }
        let model = GbtModel::train(&train, &GbtParams::default().with_estimators(150)).unwrap();
        let mse = model.mse_on(&test);
        assert!(mse < 0.01, "test MSE {mse}");
    }
}
