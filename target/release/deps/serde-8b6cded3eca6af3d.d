/root/repo/target/release/deps/serde-8b6cded3eca6af3d.d: /tmp/vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-8b6cded3eca6af3d.rlib: /tmp/vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-8b6cded3eca6af3d.rmeta: /tmp/vendor/serde/src/lib.rs

/tmp/vendor/serde/src/lib.rs:
