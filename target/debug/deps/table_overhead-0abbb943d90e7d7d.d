/root/repo/target/debug/deps/table_overhead-0abbb943d90e7d7d.d: crates/bench/src/bin/table_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libtable_overhead-0abbb943d90e7d7d.rmeta: crates/bench/src/bin/table_overhead.rs Cargo.toml

crates/bench/src/bin/table_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
