//! The micro-architectural counter set.
//!
//! One [`IntervalCounters`] is produced per 80 µs step. The 77 counters
//! here plus `temperature_sensor_data` (appended by the telemetry crate)
//! form the paper's 78 system attributes; the Table IV names
//! (`ROB_reads`, `cdb_alu_accesses`, `MUL_cdb_duty_cycle`, …) appear
//! verbatim.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! counters {
    ($( $(#[$meta:meta])* $variant:ident => $name:literal ),+ $(,)?) => {
        /// Identifier of one micro-architectural counter.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
        #[repr(usize)]
        pub enum CounterId {
            $( $(#[$meta])* $variant ),+
        }

        /// Number of micro-architectural counters (77; +1 temperature
        /// feature appended downstream = the paper's 78 attributes).
        pub const NUM_COUNTERS: usize = [$( CounterId::$variant ),+].len();

        impl CounterId {
            /// All counters, in stable index order.
            pub const ALL: [CounterId; NUM_COUNTERS] = [$( CounterId::$variant ),+];

            /// Canonical telemetry name (Table IV spelling).
            pub fn name(self) -> &'static str {
                match self {
                    $( CounterId::$variant => $name ),+
                }
            }

            /// Parses a canonical name.
            pub fn from_name(name: &str) -> Option<CounterId> {
                match name {
                    $( $name => Some(CounterId::$variant), )+
                    _ => None,
                }
            }

            /// Stable index of this counter in [`CounterId::ALL`].
            #[inline]
            pub const fn index(self) -> usize {
                self as usize
            }
        }
    };
}

counters! {
    /// Clock cycles elapsed in the interval.
    TotalCycles => "total_cycles",
    /// Cycles in which at least one µop issued.
    BusyCycles => "busy_cycles",
    /// Cycles stalled with a full re-order buffer.
    StallCyclesRob => "stall_cycles_rob",
    /// Cycles stalled with full reservation stations.
    StallCyclesRs => "stall_cycles_rs",
    /// Cycles stalled waiting on memory.
    StallCyclesMem => "stall_cycles_mem",
    /// Cycles the front end delivered no µops.
    StallCyclesFrontend => "stall_cycles_frontend",
    /// Instructions fetched (including wrong-path).
    FetchedInstructions => "fetched_instructions",
    /// Instructions decoded.
    DecodedInstructions => "decoded_instructions",
    /// Instructions renamed.
    RenamedInstructions => "renamed_instructions",
    /// µops issued to execution ports.
    IssuedInstructions => "issued_instructions",
    /// Instructions committed (architectural).
    CommittedInstructions => "committed_instructions",
    /// Committed integer-ALU instructions.
    CommittedIntInstructions => "committed_int_instructions",
    /// Committed floating-point instructions.
    CommittedFpInstructions => "committed_fp_instructions",
    /// Committed integer multiply/divide instructions.
    CommittedMulInstructions => "committed_mul_instructions",
    /// Committed loads.
    CommittedLoadInstructions => "committed_load_instructions",
    /// Committed stores.
    CommittedStoreInstructions => "committed_store_instructions",
    /// Committed branches.
    CommittedBranchInstructions => "committed_branch_instructions",
    /// Wrong-path instructions squashed.
    SquashedInstructions => "squashed_instructions",
    /// Branch-direction predictions made.
    BranchPredictions => "branch_predictions",
    /// Branch mispredictions.
    BranchMispredictions => "branch_mispredictions",
    /// Branch-target-buffer reads.
    BtbReadAccesses => "BTB_read_accesses",
    /// Branch-target-buffer writes.
    BtbWriteAccesses => "BTB_write_accesses",
    /// Return-address-stack accesses.
    RasAccesses => "RAS_accesses",
    /// L1I reads.
    IcacheReadAccesses => "icache_read_accesses",
    /// L1I read misses.
    IcacheReadMisses => "icache_read_misses",
    /// L1D reads.
    DcacheReadAccesses => "dcache_read_accesses",
    /// L1D read misses.
    DcacheReadMisses => "dcache_read_misses",
    /// L1D writes.
    DcacheWriteAccesses => "dcache_write_accesses",
    /// L1D write misses.
    DcacheWriteMisses => "dcache_write_misses",
    /// L2 reads.
    L2ReadAccesses => "l2_read_accesses",
    /// L2 read misses.
    L2ReadMisses => "l2_read_misses",
    /// L2 writes (fills and writebacks).
    L2WriteAccesses => "l2_write_accesses",
    /// L2 write misses.
    L2WriteMisses => "l2_write_misses",
    /// Off-chip memory reads.
    MemoryReads => "memory_reads",
    /// Off-chip memory writes.
    MemoryWrites => "memory_writes",
    /// ITLB lookups.
    ItlbTotalAccesses => "itlb_total_accesses",
    /// ITLB misses.
    ItlbTotalMisses => "itlb_total_misses",
    /// DTLB lookups.
    DtlbTotalAccesses => "dtlb_total_accesses",
    /// DTLB misses.
    DtlbTotalMisses => "dtlb_total_misses",
    /// Re-order-buffer reads.
    RobReads => "ROB_reads",
    /// Re-order-buffer writes.
    RobWrites => "ROB_writes",
    /// Reservation-station reads.
    RsReads => "RS_reads",
    /// Reservation-station writes.
    RsWrites => "RS_writes",
    /// Rename-table reads.
    RenameReads => "rename_reads",
    /// Rename-table writes.
    RenameWrites => "rename_writes",
    /// Integer register-file reads.
    IntRegfileReads => "int_regfile_reads",
    /// Integer register-file writes.
    IntRegfileWrites => "int_regfile_writes",
    /// FP register-file reads.
    FpRegfileReads => "fp_regfile_reads",
    /// FP register-file writes.
    FpRegfileWrites => "fp_regfile_writes",
    /// ALU results broadcast on the common data bus.
    CdbAluAccesses => "cdb_alu_accesses",
    /// Multiplier results broadcast on the CDB.
    CdbMulAccesses => "cdb_mul_accesses",
    /// FPU results broadcast on the CDB.
    CdbFpuAccesses => "cdb_fpu_accesses",
    /// Integer-ALU executions.
    AluAccesses => "alu_accesses",
    /// Multiplier executions.
    MulAccesses => "mul_accesses",
    /// FPU executions.
    FpuAccesses => "fpu_accesses",
    /// Load-store-unit operations.
    LsuAccesses => "lsu_accesses",
    /// Fraction of cycles the IFU was active.
    IfuDutyCycle => "IFU_duty_cycle",
    /// Fraction of cycles the LSU was active.
    LsuDutyCycle => "LSU_duty_cycle",
    /// Fraction of cycles the ALU drove the CDB.
    AluCdbDutyCycle => "ALU_cdb_duty_cycle",
    /// Fraction of cycles the multiplier drove the CDB.
    MulCdbDutyCycle => "MUL_cdb_duty_cycle",
    /// Fraction of cycles the FPU drove the CDB.
    FpuCdbDutyCycle => "FPU_cdb_duty_cycle",
    /// Fraction of cycles the decoders were active.
    DecodeDutyCycle => "decode_duty_cycle",
    /// Fraction of cycles rename was active.
    RenameDutyCycle => "rename_duty_cycle",
    /// Fraction of cycles the ROB ports were active.
    RobDutyCycle => "rob_duty_cycle",
    /// Fraction of cycles the scheduler woke/selected.
    SchedulerDutyCycle => "scheduler_duty_cycle",
    /// Fraction of cycles the L1D was active.
    DcacheDutyCycle => "dcache_duty_cycle",
    /// Fraction of cycles the L1I was active.
    IcacheDutyCycle => "icache_duty_cycle",
    /// Fraction of cycles the L2 was active.
    L2DutyCycle => "l2_duty_cycle",
    /// Committed instructions per cycle.
    Ipc => "ipc",
    /// Core frequency during the interval, GHz.
    FrequencyGhz => "frequency_ghz",
    /// Core voltage during the interval, V.
    VoltageV => "voltage_v",
    /// Average ROB occupancy (entries).
    AvgRobOccupancy => "avg_rob_occupancy",
    /// Average reservation-station occupancy (entries).
    AvgRsOccupancy => "avg_rs_occupancy",
    /// Average load/store-queue occupancy (entries).
    AvgLsqOccupancy => "avg_lsq_occupancy",
    /// Average outstanding memory requests (MLP).
    MemoryLevelParallelism => "memory_level_parallelism",
    /// µops executed (including replays).
    UopsExecuted => "uops_executed",
    /// Result writebacks to the register files.
    WritebackAccesses => "writeback_accesses",
}

impl fmt::Display for CounterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The counters measured over one 80 µs interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalCounters {
    values: Vec<f64>,
}

impl IntervalCounters {
    /// Creates an all-zero counter set.
    pub fn zeroed() -> Self {
        Self {
            values: vec![0.0; NUM_COUNTERS],
        }
    }

    /// Reads one counter.
    #[inline]
    pub fn get(&self, id: CounterId) -> f64 {
        self.values[id.index()]
    }

    /// Writes one counter.
    #[inline]
    pub fn set(&mut self, id: CounterId, value: f64) {
        self.values[id.index()] = value;
    }

    /// All values in [`CounterId::ALL`] order.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Committed IPC for the interval.
    pub fn ipc(&self) -> f64 {
        self.get(CounterId::Ipc)
    }

    /// Returns `true` if every counter is finite and non-negative.
    pub fn is_sane(&self) -> bool {
        self.values.iter().all(|v| v.is_finite() && *v >= 0.0)
    }
}

impl Default for IntervalCounters {
    fn default() -> Self {
        Self::zeroed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_77_counters() {
        // +1 temperature feature appended downstream = 78 paper attributes.
        assert_eq!(NUM_COUNTERS, 77);
        assert_eq!(CounterId::ALL.len(), 77);
    }

    #[test]
    fn indices_are_stable_and_dense() {
        for (i, id) in CounterId::ALL.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
    }

    #[test]
    fn names_are_unique_and_roundtrip() {
        let mut names: Vec<_> = CounterId::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_COUNTERS);
        for id in CounterId::ALL {
            assert_eq!(CounterId::from_name(id.name()), Some(id));
        }
        assert_eq!(CounterId::from_name("bogus"), None);
    }

    #[test]
    fn table_iv_names_exist() {
        // Every Table IV attribute except temperature_sensor_data must be
        // a counter here, spelled identically.
        for name in [
            "cdb_alu_accesses",
            "committed_instructions",
            "dcache_read_accesses",
            "ROB_reads",
            "total_cycles",
            "busy_cycles",
            "icache_read_accesses",
            "committed_int_instructions",
            "dtlb_total_accesses",
            "itlb_total_misses",
            "BTB_read_accesses",
            "dcache_read_misses",
            "cdb_fpu_accesses",
            "MUL_cdb_duty_cycle",
            "branch_mispredictions",
            "LSU_duty_cycle",
            "IFU_duty_cycle",
            "FPU_cdb_duty_cycle",
            "dcache_write_accesses",
        ] {
            assert!(CounterId::from_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn get_set_roundtrip() {
        let mut c = IntervalCounters::zeroed();
        assert!(c.is_sane());
        c.set(CounterId::Ipc, 1.75);
        assert_eq!(c.get(CounterId::Ipc), 1.75);
        assert_eq!(c.ipc(), 1.75);
        c.set(CounterId::TotalCycles, -1.0);
        assert!(!c.is_sane());
    }
}
