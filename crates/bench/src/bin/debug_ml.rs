//! Diagnostic: model accuracy on the test set + a decision trace for one
//! workload under ML05.

use boreas_bench::experiments::{Experiment, LOOP_STEPS, RUN_STEPS};
use boreas_core::{BoreasController, RunSpec};
use common::units::{GigaHertz, Volts};
use telemetry::{build_dataset, DatasetSpec};
use workloads::WorkloadSpec;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gamess".into());
    let exp = Experiment::paper().expect("paper");
    let (model, features) = exp.boreas_model().expect("model");

    // Test-set accuracy.
    let points: Vec<(GigaHertz, Volts)> = exp
        .vf
        .points()
        .iter()
        .map(|p| (p.frequency, p.voltage))
        .collect();
    let spec = DatasetSpec {
        steps: RUN_STEPS,
        horizon: 12,
        sensor_idx: telemetry::MAX_SENSOR_BANK,
        label_cap: Some(2.0),
    };
    let test = build_dataset(
        &exp.pipeline,
        &features,
        &WorkloadSpec::test_set(),
        &points,
        &spec,
    )
    .expect("test dataset");
    println!(
        "test MSE = {:.5} over {} instances",
        model.mse_on(&test),
        test.len()
    );

    // Per-workload high-severity accuracy.
    for (g, w) in WorkloadSpec::test_set().iter().enumerate() {
        let mut errs = Vec::new();
        for i in 0..test.len() {
            if test.groups()[i] == g as u32 && test.targets()[i] > 0.8 {
                errs.push(model.predict(&test.row(i)) - test.targets()[i]);
            }
        }
        let bias = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
        println!(
            "{:<12} hot instances: {:>5}  mean bias {:+.4}",
            w.name,
            errs.len(),
            bias
        );
    }

    // Closed-loop trace.
    let w = WorkloadSpec::by_name(&name).expect("workload");
    let mut run = RunSpec::new(&exp.pipeline).steps(LOOP_STEPS);
    let mut ml05 =
        BoreasController::try_new(model.clone(), features.clone(), 0.05).expect("schema matches");
    let out = run.run(&w, &mut ml05).expect("run");
    println!(
        "\n{} under ML05: avg {:.3} GHz, incursions {}",
        name,
        out.avg_frequency.value(),
        out.incursions
    );
    println!(
        "{:>6} {:>6} {:>8} {:>8} {:>8} {:>8}",
        "ms", "GHz", "sensor", "sev", "predH", "predU"
    );
    for chunk in out.records.chunks(12) {
        let last = chunk.last().unwrap();
        let ctx = boreas_core::ControlContext::new(
            run.vf_table(),
            run.vf_table().index_of(last.frequency).unwrap(),
            chunk,
            telemetry::MAX_SENSOR_BANK,
        );
        println!(
            "{:>6.2} {:>6.2} {:>8.2} {:>8.3} {:>8.3} {:>8.3}",
            last.time.as_millis_f64(),
            last.frequency.value(),
            last.sensor_temps[3].value(),
            chunk
                .iter()
                .map(|r| r.max_severity.value())
                .fold(0.0f64, f64::max),
            ml05.predict_hold(&ctx),
            ml05.predict_up(&ctx),
        );
    }
}
