/root/repo/target/debug/deps/crossbeam-26af7481263d3e77.d: /tmp/vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-26af7481263d3e77.rmeta: /tmp/vendor/crossbeam/src/lib.rs

/tmp/vendor/crossbeam/src/lib.rs:
