//! Fig. 1: the Hotspot-Severity surface over (temperature, MLTD).
//!
//! Prints the severity value on a T × MLTD grid plus the paper's three
//! calibration statements.

use common::units::Celsius;
use hotgauge::SeverityParams;

fn main() {
    let params = SeverityParams::default();
    println!("Fig. 1: Hotspot-Severity(T, MLTD), clamped to [0, 1]\n");
    print!("{:>8}", "T\\MLTD");
    let mltds: Vec<f64> = (0..=8).map(|i| i as f64 * 5.0).collect();
    for m in &mltds {
        print!(" {:>6.0}", m);
    }
    println!();
    for ti in 0..=14 {
        let t = 45.0 + ti as f64 * 5.0;
        print!("{:>7.0}C", t);
        for &m in &mltds {
            let s = params.evaluate(Celsius::new(t), Celsius::new(m));
            print!(" {:>6.2}", s.value());
        }
        println!();
    }
    println!("\nCalibration points (paper: severity = 1.0 at each):");
    for (t, m) in [(115.0, 0.0), (80.0, 40.0), (95.0, 20.0)] {
        let s = params.evaluate(Celsius::new(t), Celsius::new(m));
        println!("  T = {t:>5.1} C, MLTD = {m:>4.1} C -> severity {s}");
    }
}
