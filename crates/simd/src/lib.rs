//! Runtime-dispatched SIMD lanes for the Boreas hot kernels.
//!
//! The simulation kernels (`thermal::solver`, `hotgauge::mltd`,
//! `gbt::FlatModel`) are elementwise stencil math, exact `min`
//! selections and tree-descent compares — exactly the float operations
//! whose vector forms are IEEE-identical to their scalar forms. This
//! crate provides the three pieces they share:
//!
//! * [`Isa`] — the instruction-set ladder (AVX2 → SSE2 → scalar),
//!   detected once per process via `is_x86_feature_detected!` and
//!   overridable with the `BOREAS_SIMD` environment variable
//!   (`scalar`, `sse2` or `avx2`) for testing and CI equivalence runs;
//! * [`SimdF64`] + [`F64x2`] / [`F64x4`] — safe lane-wrapper types over
//!   the `core::arch` `f64` vectors, exposing only the exact-rounding
//!   elementwise operations (`add`/`sub`/`mul`/`div`/`min`). No FMA, no
//!   horizontal reductions: every lane computes the same IEEE-754
//!   expression the scalar code computes, so results are *bit*-identical
//!   by construction;
//! * slice kernels ([`min_assign`], [`sub_into`], [`sliding_min`]) used
//!   by the MLTD sweep, dispatched per call on a caller-held [`Isa`].
//!
//! # The bit-identity contract
//!
//! Vector `add`/`sub`/`mul`/`div` round each lane exactly like the
//! corresponding scalar instruction — SIMD changes *which registers*
//! hold the values, never the rounding. Divergence can only come from
//! (a) FMA contraction (never emitted: the wrappers call the explicit
//! non-fused intrinsics), (b) re-associated reductions (the only
//! reduction on the hot paths, the thermal package-flux sum, is
//! accumulated in scalar program order by extracting lanes), or
//! (c) `min`/`max` tie-breaking on `-0.0`/NaN (the kernels operate on
//! finite temperatures and model thresholds; NaN inputs are rejected
//! upstream and `-0.0` does not arise from °C fields). See DESIGN §14.

use common::{Error, Result};
use std::sync::OnceLock;

/// Environment variable overriding the detected instruction set.
pub const ISA_ENV: &str = "BOREAS_SIMD";

/// The instruction sets the dispatcher can select.
///
/// Ordered by capability: `Scalar < Sse2 < Avx2`, so "is this supported"
/// is a plain comparison against [`Isa::detect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Isa {
    /// The plain scalar kernels (the PR 3 fused code, any architecture).
    Scalar,
    /// 128-bit lanes (2 × f64). Baseline on `x86_64`.
    Sse2,
    /// 256-bit lanes (4 × f64).
    Avx2,
}

impl Isa {
    /// Every ISA, best first.
    pub const ALL: [Isa; 3] = [Isa::Avx2, Isa::Sse2, Isa::Scalar];

    /// The best instruction set this CPU supports.
    pub fn detect() -> Isa {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return Isa::Avx2;
            }
            // SSE2 is part of the x86_64 baseline.
            Isa::Sse2
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Isa::Scalar
        }
    }

    /// Whether this CPU can execute kernels compiled for `self`.
    pub fn is_supported(self) -> bool {
        self <= Isa::detect()
    }

    /// The ISAs this CPU supports, best first (always ends in `Scalar`).
    pub fn available() -> Vec<Isa> {
        Isa::ALL
            .iter()
            .copied()
            .filter(|i| i.is_supported())
            .collect()
    }

    /// The canonical lowercase name (`"scalar"`, `"sse2"`, `"avx2"`).
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Sse2 => "sse2",
            Isa::Avx2 => "avx2",
        }
    }

    /// `f64` lanes per vector (1, 2 or 4).
    pub fn lanes_f64(self) -> usize {
        match self {
            Isa::Scalar => 1,
            Isa::Sse2 => 2,
            Isa::Avx2 => 4,
        }
    }

    /// Parses a [`ISA_ENV`] override value.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for anything other than
    /// `scalar`, `sse2` or `avx2` (case-insensitive).
    pub fn parse(value: &str) -> Result<Isa> {
        match value.to_ascii_lowercase().as_str() {
            "scalar" => Ok(Isa::Scalar),
            "sse2" => Ok(Isa::Sse2),
            "avx2" => Ok(Isa::Avx2),
            other => Err(Error::invalid_config(
                "BOREAS_SIMD",
                format!("unknown ISA {other:?} (expected scalar, sse2 or avx2)"),
            )),
        }
    }

    /// The ISA selected by the environment: the [`ISA_ENV`] override when
    /// set, otherwise [`Isa::detect`]. Not cached — see [`Isa::active`]
    /// for the process-wide selection.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the override names an
    /// unknown ISA or one this CPU cannot execute.
    pub fn from_env() -> Result<Isa> {
        match std::env::var(ISA_ENV) {
            Err(_) => Ok(Isa::detect()),
            Ok(value) => {
                let isa = Isa::parse(&value)?;
                if !isa.is_supported() {
                    return Err(Error::invalid_config(
                        "BOREAS_SIMD",
                        format!(
                            "{} requested but this CPU only supports {}",
                            isa.name(),
                            Isa::detect().name()
                        ),
                    ));
                }
                Ok(isa)
            }
        }
    }

    /// The process-wide ISA selection: [`Isa::from_env`], resolved once
    /// and cached. Every kernel constructor reads this, so one process
    /// never silently mixes ISAs.
    ///
    /// # Panics
    ///
    /// Panics when `BOREAS_SIMD` is set to an unknown or unsupported
    /// value — an explicit override that cannot be honoured must never
    /// degrade silently into a different ISA's numbers. Use
    /// [`Isa::from_env`] for fallible handling.
    pub fn active() -> Isa {
        static ACTIVE: OnceLock<Isa> = OnceLock::new();
        *ACTIVE.get_or_init(|| Isa::from_env().expect("invalid BOREAS_SIMD override"))
    }

    /// The `BOREAS_SIMD` override value, when one is set (reported in
    /// benchmark metadata so cross-ISA comparisons are never silent).
    pub fn env_override() -> Option<String> {
        std::env::var(ISA_ENV).ok()
    }
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The widest vector any [`Isa`] uses, in `f64` lanes — the size of the
/// stack staging buffers used to spill lanes in program order.
pub const MAX_LANES: usize = 4;

/// A pack of `f64` lanes supporting exactly the elementwise operations
/// the kernels need. Every operation rounds each lane precisely like the
/// scalar `f64` operator — implementations must never use FMA or
/// approximate instructions.
///
/// Implementations whose operations require a CPU feature beyond the
/// compilation baseline (e.g. [`F64x4`] needs AVX) must only be *used*
/// from code compiled with that feature enabled — in this crate and its
/// consumers, from `#[target_feature]` kernel entry points guarded by an
/// [`Isa`] check. The inherent safety is managed by keeping the
/// constructors crate-public to such generic kernels; the slice loads
/// themselves are bounds-checked.
pub trait SimdF64: Copy {
    /// Lanes in this pack.
    const LANES: usize;

    /// Loads `Self::LANES` values from the front of `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is shorter than `Self::LANES`.
    fn from_slice(s: &[f64]) -> Self;

    /// One value in every lane.
    fn splat(v: f64) -> Self;

    /// Stores the lanes to the front of `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than `Self::LANES`.
    fn write_to(self, out: &mut [f64]);

    /// Spills the lanes, in lane order, to the front of a
    /// [`MAX_LANES`]-sized staging buffer (for program-order scalar
    /// accumulation).
    fn spill(self, out: &mut [f64; MAX_LANES]);

    /// Lanewise `+` (exact, no contraction).
    fn add(self, o: Self) -> Self;
    /// Lanewise `-`.
    fn sub(self, o: Self) -> Self;
    /// Lanewise `*`.
    fn mul(self, o: Self) -> Self;
    /// Lanewise `/`.
    fn div(self, o: Self) -> Self;
    /// Lanewise minimum with the *keep-on-tie* polarity of
    /// `if b < a { a = b }`: returns `self` when the lanes are equal
    /// (`minpd self, other` semantics). Identical to `f64::min` for
    /// finite inputs that do not mix `+0.0`/`-0.0`.
    fn min(self, o: Self) -> Self;
}

#[cfg(target_arch = "x86_64")]
mod lanes_x86 {
    use super::{SimdF64, MAX_LANES};
    use std::arch::x86_64::*;

    /// Two `f64` lanes over SSE2 (the `x86_64` baseline — safe to use
    /// anywhere on this architecture).
    #[derive(Debug, Clone, Copy)]
    pub struct F64x2(__m128d);

    impl SimdF64 for F64x2 {
        const LANES: usize = 2;

        #[inline(always)]
        fn from_slice(s: &[f64]) -> Self {
            assert!(s.len() >= 2);
            // SAFETY: bounds asserted above; SSE2 is baseline on x86_64.
            F64x2(unsafe { _mm_loadu_pd(s.as_ptr()) })
        }

        #[inline(always)]
        fn splat(v: f64) -> Self {
            F64x2(unsafe { _mm_set1_pd(v) })
        }

        #[inline(always)]
        fn write_to(self, out: &mut [f64]) {
            assert!(out.len() >= 2);
            // SAFETY: bounds asserted above.
            unsafe { _mm_storeu_pd(out.as_mut_ptr(), self.0) }
        }

        #[inline(always)]
        fn spill(self, out: &mut [f64; MAX_LANES]) {
            unsafe { _mm_storeu_pd(out.as_mut_ptr(), self.0) }
        }

        #[inline(always)]
        fn add(self, o: Self) -> Self {
            F64x2(unsafe { _mm_add_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn sub(self, o: Self) -> Self {
            F64x2(unsafe { _mm_sub_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn mul(self, o: Self) -> Self {
            F64x2(unsafe { _mm_mul_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn div(self, o: Self) -> Self {
            F64x2(unsafe { _mm_div_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn min(self, o: Self) -> Self {
            // minpd(b, a) = (b < a) ? b : a — keeps `self` on ties.
            F64x2(unsafe { _mm_min_pd(o.0, self.0) })
        }
    }

    /// Four `f64` lanes over AVX. Only constructed inside
    /// `#[target_feature(enable = "avx2")]` kernels reached through an
    /// [`super::Isa::Avx2`] dispatch check.
    #[derive(Debug, Clone, Copy)]
    pub struct F64x4(__m256d);

    impl SimdF64 for F64x4 {
        const LANES: usize = 4;

        #[inline(always)]
        fn from_slice(s: &[f64]) -> Self {
            assert!(s.len() >= 4);
            // SAFETY: bounds asserted; AVX availability guaranteed by the
            // dispatching kernel's Isa check.
            F64x4(unsafe { _mm256_loadu_pd(s.as_ptr()) })
        }

        #[inline(always)]
        fn splat(v: f64) -> Self {
            F64x4(unsafe { _mm256_set1_pd(v) })
        }

        #[inline(always)]
        fn write_to(self, out: &mut [f64]) {
            assert!(out.len() >= 4);
            // SAFETY: bounds asserted above.
            unsafe { _mm256_storeu_pd(out.as_mut_ptr(), self.0) }
        }

        #[inline(always)]
        fn spill(self, out: &mut [f64; MAX_LANES]) {
            unsafe { _mm256_storeu_pd(out.as_mut_ptr(), self.0) }
        }

        #[inline(always)]
        fn add(self, o: Self) -> Self {
            F64x4(unsafe { _mm256_add_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn sub(self, o: Self) -> Self {
            F64x4(unsafe { _mm256_sub_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn mul(self, o: Self) -> Self {
            F64x4(unsafe { _mm256_mul_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn div(self, o: Self) -> Self {
            F64x4(unsafe { _mm256_div_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn min(self, o: Self) -> Self {
            F64x4(unsafe { _mm256_min_pd(o.0, self.0) })
        }
    }
}

#[cfg(target_arch = "x86_64")]
pub use lanes_x86::{F64x2, F64x4};

/// `dst[i] = min(dst[i], src[i])` elementwise, with the keep-on-tie
/// polarity of the scalar MLTD combine (`m = m.min(v)`).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn min_assign(isa: Isa, dst: &mut [f64], src: &[f64]) {
    assert_eq!(dst.len(), src.len(), "min_assign length mismatch");
    match isa {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Isa::Avx2 is only selectable when the CPU supports it
        // (Isa::from_env / Isa::detect enforce this).
        Isa::Avx2 => unsafe { min_assign_avx2(dst, src) },
        #[cfg(target_arch = "x86_64")]
        Isa::Sse2 => min_assign_lanes::<F64x2>(dst, src),
        _ => {
            for (m, &v) in dst.iter_mut().zip(src) {
                *m = m.min(v);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn min_assign_avx2(dst: &mut [f64], src: &[f64]) {
    min_assign_lanes::<F64x4>(dst, src);
}

#[inline(always)]
fn min_assign_lanes<V: SimdF64>(dst: &mut [f64], src: &[f64]) {
    let n = dst.len();
    let mut i = 0;
    while i + V::LANES <= n {
        let a = V::from_slice(&dst[i..]);
        let b = V::from_slice(&src[i..]);
        a.min(b).write_to(&mut dst[i..]);
        i += V::LANES;
    }
    while i < n {
        dst[i] = dst[i].min(src[i]);
        i += 1;
    }
}

/// `out[i] = a[i] - b[i]` elementwise (exact, so bit-identical to the
/// scalar subtraction at any lane width).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn sub_into(isa: Isa, a: &[f64], b: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), b.len(), "sub_into length mismatch");
    assert_eq!(a.len(), out.len(), "sub_into output length mismatch");
    match isa {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 selection implies CPU support (see min_assign).
        Isa::Avx2 => unsafe { sub_into_avx2(a, b, out) },
        #[cfg(target_arch = "x86_64")]
        Isa::Sse2 => sub_into_lanes::<F64x2>(a, b, out),
        _ => {
            for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                *o = x - y;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn sub_into_avx2(a: &[f64], b: &[f64], out: &mut [f64]) {
    sub_into_lanes::<F64x4>(a, b, out);
}

#[inline(always)]
fn sub_into_lanes<V: SimdF64>(a: &[f64], b: &[f64], out: &mut [f64]) {
    let n = out.len();
    let mut i = 0;
    while i + V::LANES <= n {
        let x = V::from_slice(&a[i..]);
        let y = V::from_slice(&b[i..]);
        x.sub(y).write_to(&mut out[i..]);
        i += V::LANES;
    }
    while i < n {
        out[i] = a[i] - b[i];
        i += 1;
    }
}

/// Sliding-window minimum of `src` with window `[i - hw, i + hw]`
/// clamped to the slice, written to `out` (`out.len() == src.len()`).
///
/// Uses the doubling (sparse-table) scheme instead of the scalar van
/// Herk / Gil–Werman block decomposition: `+inf`-pad to `n + 2·hw`,
/// build prefix minima of power-of-two span `K` (the largest power of
/// two ≤ the window length `L`) with `log₂ K` in-place shifted-`min`
/// passes, then combine `min(p[i], p[i + L - K])`. Every pass is an
/// elementwise `min` of a slice against its shifted self, so the whole
/// computation vectorizes; because `min` over NaN-free floats is exact
/// selection, the result is bit-identical to the van Herk scan no
/// matter how the `min`s are associated.
///
/// `work` is the caller's reusable padding buffer.
///
/// # Panics
///
/// Panics if `out.len() != src.len()`.
pub fn sliding_min(isa: Isa, src: &[f64], hw: usize, work: &mut Vec<f64>, out: &mut [f64]) {
    assert_eq!(src.len(), out.len(), "sliding_min length mismatch");
    if hw == 0 {
        out.copy_from_slice(src);
        return;
    }
    let n = src.len();
    let m = n + 2 * hw;
    work.clear();
    work.resize(m, f64::INFINITY);
    work[hw..hw + n].copy_from_slice(src);
    match isa {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 selection implies CPU support (see min_assign).
        Isa::Avx2 => unsafe { sliding_min_avx2(hw, work, out) },
        #[cfg(target_arch = "x86_64")]
        Isa::Sse2 => sliding_min_lanes::<F64x2>(hw, work, out),
        _ => sliding_min_lanes::<ScalarLane>(hw, work, out),
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn sliding_min_avx2(hw: usize, work: &mut [f64], out: &mut [f64]) {
    sliding_min_lanes::<F64x4>(hw, work, out);
}

#[inline(always)]
fn sliding_min_lanes<V: SimdF64>(hw: usize, work: &mut [f64], out: &mut [f64]) {
    let l = 2 * hw + 1;
    let m = work.len();
    // Largest power of two ≤ l (l ≥ 3 here, so k ≥ 2).
    let k = usize::BITS - 1 - l.leading_zeros();
    let k_span = 1usize << k;
    // After pass j, work[i] = min(src_padded[i .. i + 2^(j+1)]).
    let mut s = 1usize;
    while s < k_span {
        // In-place forward shifted min: reads at i + s happen before that
        // index is written (writes trail reads by `s`).
        let limit = m - s;
        let mut i = 0;
        while i + V::LANES <= limit {
            let a = V::from_slice(&work[i..]);
            let b = V::from_slice(&work[i + s..]);
            a.min(b).write_to(&mut work[i..]);
            i += V::LANES;
        }
        while i < limit {
            work[i] = work[i].min(work[i + s]);
            i += 1;
        }
        s <<= 1;
    }
    // Window of cell c covers padded[c .. c + l]; combine the two
    // K-spans anchored at its ends.
    let shift = l - k_span;
    let n = out.len();
    let mut i = 0;
    while i + V::LANES <= n {
        let a = V::from_slice(&work[i..]);
        let b = V::from_slice(&work[i + shift..]);
        a.min(b).write_to(&mut out[i..]);
        i += V::LANES;
    }
    while i < n {
        out[i] = work[i].min(work[i + shift]);
        i += 1;
    }
}

/// One-lane "vector" so the scalar fallback shares the generic kernels.
#[derive(Debug, Clone, Copy)]
struct ScalarLane(f64);

impl SimdF64 for ScalarLane {
    const LANES: usize = 1;

    #[inline(always)]
    fn from_slice(s: &[f64]) -> Self {
        ScalarLane(s[0])
    }

    #[inline(always)]
    fn splat(v: f64) -> Self {
        ScalarLane(v)
    }

    #[inline(always)]
    fn write_to(self, out: &mut [f64]) {
        out[0] = self.0;
    }

    #[inline(always)]
    fn spill(self, out: &mut [f64; MAX_LANES]) {
        out[0] = self.0;
    }

    #[inline(always)]
    fn add(self, o: Self) -> Self {
        ScalarLane(self.0 + o.0)
    }

    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        ScalarLane(self.0 - o.0)
    }

    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        ScalarLane(self.0 * o.0)
    }

    #[inline(always)]
    fn div(self, o: Self) -> Self {
        ScalarLane(self.0 / o.0)
    }

    #[inline(always)]
    fn min(self, o: Self) -> Self {
        ScalarLane(if o.0 < self.0 { o.0 } else { self.0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_known_isas_case_insensitively() {
        assert_eq!(Isa::parse("scalar").unwrap(), Isa::Scalar);
        assert_eq!(Isa::parse("SSE2").unwrap(), Isa::Sse2);
        assert_eq!(Isa::parse("Avx2").unwrap(), Isa::Avx2);
    }

    #[test]
    fn parse_rejects_unknown_isa() {
        let err = Isa::parse("avx512").unwrap_err();
        assert!(
            matches!(
                err,
                Error::InvalidConfig {
                    what: "BOREAS_SIMD",
                    ..
                }
            ),
            "{err}"
        );
        assert!(err.to_string().contains("avx512"), "{err}");
    }

    #[test]
    fn detect_is_supported_and_scalar_always_is() {
        assert!(Isa::detect().is_supported());
        assert!(Isa::Scalar.is_supported());
        let avail = Isa::available();
        assert_eq!(avail.last().copied(), Some(Isa::Scalar));
        assert_eq!(avail.first().copied(), Some(Isa::detect()));
    }

    #[test]
    fn names_and_lanes_are_consistent() {
        for isa in Isa::ALL {
            assert_eq!(Isa::parse(isa.name()).unwrap(), isa);
            assert!(isa.lanes_f64() <= MAX_LANES);
            assert_eq!(format!("{isa}"), isa.name());
        }
        assert_eq!(Isa::Scalar.lanes_f64(), 1);
        assert_eq!(Isa::Sse2.lanes_f64(), 2);
        assert_eq!(Isa::Avx2.lanes_f64(), 4);
    }

    fn ramp(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 40.0 + ((i * 37) % 19) as f64 * 1.7)
            .collect()
    }

    #[test]
    fn min_assign_matches_scalar_for_every_available_isa() {
        for n in [0, 1, 2, 3, 5, 8, 13, 64, 101] {
            let a0 = ramp(n);
            let b: Vec<f64> = ramp(n).iter().map(|v| 120.0 - v).collect();
            let mut want = a0.clone();
            for (m, &v) in want.iter_mut().zip(&b) {
                *m = m.min(v);
            }
            for isa in Isa::available() {
                let mut got = a0.clone();
                min_assign(isa, &mut got, &b);
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.to_bits(), w.to_bits(), "{isa} n={n}");
                }
            }
        }
    }

    #[test]
    fn sub_into_matches_scalar_for_every_available_isa() {
        for n in [0, 1, 3, 4, 7, 64, 101] {
            let a = ramp(n);
            let b: Vec<f64> = ramp(n).iter().map(|v| v * 0.43).collect();
            let want: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x - y).collect();
            for isa in Isa::available() {
                let mut got = vec![0.0; n];
                sub_into(isa, &a, &b, &mut got);
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.to_bits(), w.to_bits(), "{isa} n={n}");
                }
            }
        }
    }

    /// Brute-force window minimum, the semantics `sliding_min` must hit.
    fn window_min_naive(src: &[f64], hw: usize) -> Vec<f64> {
        (0..src.len())
            .map(|i| {
                let lo = i.saturating_sub(hw);
                let hi = (i + hw).min(src.len() - 1);
                src[lo..=hi].iter().copied().fold(f64::INFINITY, f64::min)
            })
            .collect()
    }

    #[test]
    fn sliding_min_matches_naive_for_every_available_isa() {
        let mut work = Vec::new();
        for n in [1, 2, 3, 4, 5, 9, 16, 33, 80, 101] {
            let src = ramp(n);
            for hw in [0, 1, 2, 3, 4, 7, 11] {
                let want = window_min_naive(&src, hw);
                for isa in Isa::available() {
                    let mut got = vec![0.0; n];
                    sliding_min(isa, &src, hw, &mut work, &mut got);
                    for (g, w) in got.iter().zip(&want) {
                        assert_eq!(g.to_bits(), w.to_bits(), "{isa} n={n} hw={hw}");
                    }
                }
            }
        }
    }
}
