/root/repo/target/debug/deps/fig8_dynamic_runs-b980baccffd129a9.d: crates/bench/src/bin/fig8_dynamic_runs.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_dynamic_runs-b980baccffd129a9.rmeta: crates/bench/src/bin/fig8_dynamic_runs.rs Cargo.toml

crates/bench/src/bin/fig8_dynamic_runs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
