/root/repo/target/debug/deps/boreas_workloads-80241454763518a7.d: crates/workloads/src/lib.rs crates/workloads/src/phase.rs crates/workloads/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libboreas_workloads-80241454763518a7.rmeta: crates/workloads/src/lib.rs crates/workloads/src/phase.rs crates/workloads/src/spec.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/phase.rs:
crates/workloads/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
