/root/repo/target/debug/deps/boreas_gbt-660c7fa3fc6d9680.d: crates/gbt/src/lib.rs crates/gbt/src/cv.rs crates/gbt/src/dataset.rs crates/gbt/src/flat.rs crates/gbt/src/model.rs crates/gbt/src/params.rs crates/gbt/src/tree.rs

/root/repo/target/debug/deps/libboreas_gbt-660c7fa3fc6d9680.rlib: crates/gbt/src/lib.rs crates/gbt/src/cv.rs crates/gbt/src/dataset.rs crates/gbt/src/flat.rs crates/gbt/src/model.rs crates/gbt/src/params.rs crates/gbt/src/tree.rs

/root/repo/target/debug/deps/libboreas_gbt-660c7fa3fc6d9680.rmeta: crates/gbt/src/lib.rs crates/gbt/src/cv.rs crates/gbt/src/dataset.rs crates/gbt/src/flat.rs crates/gbt/src/model.rs crates/gbt/src/params.rs crates/gbt/src/tree.rs

crates/gbt/src/lib.rs:
crates/gbt/src/cv.rs:
crates/gbt/src/dataset.rs:
crates/gbt/src/flat.rs:
crates/gbt/src/model.rs:
crates/gbt/src/params.rs:
crates/gbt/src/tree.rs:
