//! Training-path benchmark: measures the histogram GBT trainer against
//! the exact-greedy reference on the Fig. 8 training extraction and
//! writes `BENCH_training.json`, the tracked training-perf trajectory.
//!
//! Three configurations are timed (median wall ns over repeated full
//! trainings, reduced ensemble so a sample stays interactive):
//!
//! * `train_hist_1t` / `train_hist_2t` / `train_hist_4t` — the binned
//!   histogram trainer ([`gbt::TrainSpec`], [`gbt::TrainMethod::Histogram`])
//!   at 1, 2 and 4 threads;
//! * the baseline is [`gbt::GbtModel::train_reference`], the seed's
//!   exact greedy scan, on the same dataset and hyper-parameters.
//!
//! Beside timing, the run *asserts* the determinism contract: the three
//! thread counts must produce bit-identical predictions on every
//! training row.
//!
//! Usage: `bench_training [--smoke] [--out PATH] [--check BASELINE]
//! [--metrics-out BASE]`. `--smoke` swaps the pipeline extraction for a
//! synthetic dataset and shrinks the ensemble for CI; `--check` compares
//! each configuration's *speedup ratio* (histogram vs reference on the
//! same machine — machine-independent) against a checked-in baseline and
//! exits non-zero on a >25% regression; `--metrics-out` additionally
//! exports the medians/speedups as Prometheus gauges. JSON is emitted
//! without serde so the binary has no serialisation dependency.

use common::Result;
use gbt::{Dataset, GbtModel, GbtParams, TrainMethod};
use std::time::Instant;
use workloads::WorkloadSpec;

/// One timed training configuration.
struct TrainResult {
    name: &'static str,
    median_ns: f64,
    reference_median_ns: f64,
}

impl TrainResult {
    fn speedup(&self) -> f64 {
        self.reference_median_ns / self.median_ns
    }
}

/// Times `op` `samples` times; returns the median wall nanoseconds.
/// One full training per sample — no inner iteration loop, trainings are
/// long enough to time directly.
fn measure(samples: usize, mut op: impl FnMut()) -> f64 {
    op(); // warm-up
    let mut ns: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            op();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    ns[ns.len() / 2]
}

/// The Fig. 8 training extraction: the paper training workloads over the
/// paper VF table (1 estimator — only the dataset is wanted here).
fn fig8_dataset() -> Result<Dataset> {
    let pipeline = hotgauge::PipelineConfig::paper().build()?;
    let report = boreas_core::TrainSpec::new(&pipeline)
        .workloads(&WorkloadSpec::train_set())
        .params(GbtParams::default().with_estimators(1))
        .threads(1)
        .fit()?;
    Ok(report.dataset)
}

/// Synthetic stand-in for smoke mode: same row/feature shape class, a
/// nonlinear target with per-feature structure so trees actually split.
fn synthetic_dataset(rows: usize, features: usize) -> Result<Dataset> {
    let names: Vec<String> = (0..features).map(|f| format!("x{f}")).collect();
    let mut d = Dataset::new(names);
    let mut row = vec![0.0; features];
    for i in 0..rows {
        for (f, x) in row.iter_mut().enumerate() {
            *x = (((i * (2 * f + 3) + 7 * f) % 997) as f64) / 997.0;
        }
        let y = 2.0 * row[0] + (row[1 % features] - 0.5).powi(2) - 0.5 * row[2 % features];
        d.push_row(&row, y, (i % 8) as u32)?;
    }
    Ok(d)
}

/// Trains with the histogram path at a thread count and returns the
/// model (for the determinism assertion).
fn hist_train(data: &Dataset, params: &GbtParams, threads: usize) -> GbtModel {
    gbt::TrainSpec::new(data)
        .params(*params)
        .method(TrainMethod::Histogram)
        .threads(threads)
        .fit()
        .expect("histogram training")
        .model
}

/// Asserts the thread-count determinism contract: per-row predictions of
/// `a` and `b` agree to the bit.
fn assert_bit_identical(data: &Dataset, a: &GbtModel, b: &GbtModel, what: &str) {
    for r in 0..data.len() {
        let row = data.row(r);
        let (pa, pb) = (a.predict(&row), b.predict(&row));
        assert!(
            pa.to_bits() == pb.to_bits(),
            "{what}: prediction differs on row {r}: {pa:?} vs {pb:?}"
        );
    }
}

fn render_json(results: &[TrainResult], rows: usize, features: usize, smoke: bool) -> String {
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let kernels: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"name\": \"{}\",\n      \"median_ns\": {:.1},\n      \
                 \"reference_median_ns\": {:.1},\n      \"speedup\": {:.3}\n    }}",
                r.name,
                r.median_ns,
                r.reference_median_ns,
                r.speedup()
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"boreas-bench-training-v1\",\n  \"smoke\": {},\n  \"dataset\": {{\n    \
         \"rows\": {},\n    \"features\": {}\n  }},\n  \"machine\": {{\n    \"os\": \"{}\",\n    \
         \"arch\": \"{}\",\n    \"threads\": {}\n  }},\n  \"kernels\": [\n{}\n  ]\n}}\n",
        smoke,
        rows,
        features,
        std::env::consts::OS,
        std::env::consts::ARCH,
        threads,
        kernels.join(",\n")
    )
}

/// Extracts `(name, speedup)` pairs from a `boreas-bench-training-v1`
/// JSON document (same minimal scanner idiom as `bench_hotpath`): pairs
/// each `"name"` string with the next `"speedup"` number.
fn extract_speedups(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(p) = rest.find("\"name\"") {
        rest = &rest[p + 6..];
        let Some(q0) = rest.find('"') else { break };
        let Some(q1) = rest[q0 + 1..].find('"') else {
            break;
        };
        let name = rest[q0 + 1..q0 + 1 + q1].to_string();
        let Some(s) = rest.find("\"speedup\"") else {
            break;
        };
        rest = &rest[s + 9..];
        let num: String = rest
            .chars()
            .skip_while(|c| *c == ':' || c.is_whitespace())
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push((name, v));
        }
    }
    out
}

/// Compares current speedups against a baseline snapshot; returns the
/// configurations that regressed by more than 25%.
fn regressions(current: &[TrainResult], baseline_json: &str) -> Vec<String> {
    let baseline = extract_speedups(baseline_json);
    let mut bad = Vec::new();
    for r in current {
        if let Some((_, base)) = baseline.iter().find(|(n, _)| n == r.name) {
            let floor = base / 1.25;
            if r.speedup() < floor {
                bad.push(format!(
                    "{}: speedup {:.2}x is >25% below baseline {:.2}x",
                    r.name,
                    r.speedup(),
                    base
                ));
            }
        }
    }
    bad
}

fn main() -> Result<()> {
    let reporting = boreas_bench::Reporting::from_args();
    let args: Vec<String> = reporting.rest().to_vec();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_training.json".into());
    let check_path = flag_value("--check");

    println!(
        "bench_training ({} mode)",
        if smoke { "smoke" } else { "full" }
    );
    // Reduced ensemble: per-tree cost is what the two trainers differ
    // in, and a short boost keeps one timing sample interactive.
    let (data, params, samples) = if smoke {
        (
            synthetic_dataset(6_000, 12)?,
            GbtParams::default().with_estimators(8),
            3,
        )
    } else {
        (fig8_dataset()?, GbtParams::default().with_estimators(20), 5)
    };
    println!(
        "  dataset: {} rows x {} features, {} trees/training",
        data.len(),
        data.num_features(),
        params.n_estimators
    );

    // Determinism contract first: 1, 2 and 4 trainer threads must agree
    // to the bit.
    let m1 = hist_train(&data, &params, 1);
    let m2 = hist_train(&data, &params, 2);
    let m4 = hist_train(&data, &params, 4);
    assert_bit_identical(&data, &m1, &m2, "1 vs 2 threads");
    assert_bit_identical(&data, &m1, &m4, "1 vs 4 threads");
    println!("  determinism: 1/2/4-thread models bit-identical on every training row");

    let reference_median_ns = measure(samples, || {
        std::hint::black_box(GbtModel::train_reference(&data, &params).expect("reference"));
    });
    let mut results = Vec::new();
    for (name, threads) in [
        ("train_hist_1t", 1usize),
        ("train_hist_2t", 2),
        ("train_hist_4t", 4),
    ] {
        let median_ns = measure(samples, || {
            std::hint::black_box(hist_train(&data, &params, threads));
        });
        results.push(TrainResult {
            name,
            median_ns,
            reference_median_ns,
        });
    }
    println!(
        "  {:<14} {:>12.0} ns/training",
        "reference", reference_median_ns
    );
    for r in &results {
        println!(
            "  {:<14} {:>12.0} ns/training  ({:>5.2}x vs reference)",
            r.name,
            r.median_ns,
            r.speedup()
        );
    }

    let json = render_json(&results, data.len(), data.num_features(), smoke);
    std::fs::write(&out_path, &json)
        .map_err(|e| common::Error::io("write bench results", e.to_string()))?;
    println!("wrote {out_path}");

    if reporting.metrics_out().is_some() {
        for r in &results {
            reporting
                .obs
                .metrics
                .gauge(
                    &format!("bench_{}_median_ns", r.name),
                    "Median histogram training time, ns",
                )
                .set(r.median_ns);
            reporting
                .obs
                .metrics
                .gauge(
                    &format!("bench_{}_speedup", r.name),
                    "Histogram vs exact-greedy training speedup",
                )
                .set(r.speedup());
        }
        reporting.finish(None)?;
    }

    if let Some(baseline_path) = check_path {
        let baseline = std::fs::read_to_string(&baseline_path)
            .map_err(|e| common::Error::io("read bench baseline", e.to_string()))?;
        let bad = regressions(&results, &baseline);
        if !bad.is_empty() {
            for b in &bad {
                eprintln!("REGRESSION {b}");
            }
            std::process::exit(1);
        }
        println!("check vs {baseline_path}: ok");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_scanner_roundtrips_render() {
        let results = vec![
            TrainResult {
                name: "train_hist_1t",
                median_ns: 1000.0,
                reference_median_ns: 3000.0,
            },
            TrainResult {
                name: "train_hist_4t",
                median_ns: 500.0,
                reference_median_ns: 3000.0,
            },
        ];
        let json = render_json(&results, 6000, 12, true);
        let got = extract_speedups(&json);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, "train_hist_1t");
        assert!((got[0].1 - 3.0).abs() < 1e-9);
        assert_eq!(got[1].0, "train_hist_4t");
        assert!((got[1].1 - 6.0).abs() < 1e-9);
    }

    #[test]
    fn regression_check_flags_only_large_drops() {
        let baseline = render_json(
            &[TrainResult {
                name: "train_hist_4t",
                median_ns: 1.0,
                reference_median_ns: 4.0,
            }],
            6000,
            12,
            true,
        );
        // 4.0x -> 3.5x is within the 25% band.
        let fine = [TrainResult {
            name: "train_hist_4t",
            median_ns: 2.0,
            reference_median_ns: 7.0,
        }];
        assert!(regressions(&fine, &baseline).is_empty());
        // 4.0x -> 2.0x is a regression.
        let bad = [TrainResult {
            name: "train_hist_4t",
            median_ns: 2.0,
            reference_median_ns: 4.0,
        }];
        assert_eq!(regressions(&bad, &baseline).len(), 1);
    }

    #[test]
    fn synthetic_dataset_has_the_requested_shape() {
        let d = synthetic_dataset(100, 5).unwrap();
        assert_eq!(d.len(), 100);
        assert_eq!(d.num_features(), 5);
    }
}
