//! The Boreas serving daemon: streaming telemetry in, V/f decisions out.
//!
//! Listens for length-prefixed JSON `TelemetryFrame`s, shards them
//! across independent per-die control loops, answers each completed
//! 960 µs interval with a decision, and exposes its metrics registry
//! over HTTP. SIGTERM/SIGINT drain cleanly: every accepted frame is
//! processed and every pending decision flushed before exit.
//!
//! Two I/O backends are runtime-selectable with `--backend`:
//! `threads` (two OS threads per connection) and `epoll` (a few
//! reactor threads multiplexing every connection; Linux only, the
//! default there). Both serve byte-identical decision streams.
//!
//! Run `boreas_serve --help` for the full flag list. `--smoke` serves
//! the tiny synthetic severity ≈ frequency/5 GBT model (same stand-in
//! as `fig8_dynamic_runs --smoke`) as an ML05 controller, so the CI
//! smoke job exercises the batched GBT inference path without a
//! training pipeline; without it the daemon serves the flat-70 °C
//! TH-00 thermal controller.

use boreas_core::VfTable;
use boreas_serve::{cli, http, signal, Backend, ServeConfig, Server};
use common::{Result, ServerKind};
use engine::ControllerSpec;
use obs::Registry;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The fig8-smoke stand-in model: severity ≈ frequency/5, trained on a
/// synthetic single-feature dataset in milliseconds.
fn smoke_ml_spec() -> Result<ControllerSpec> {
    let mut d = gbt::Dataset::new(vec!["frequency_ghz".to_string()]);
    for i in 0..200 {
        let f = 2.0 + 3.0 * (i as f64 / 200.0);
        d.push_row(&[f], f / 5.0, (i % 2) as u32)?;
    }
    let model = gbt::TrainSpec::new(&d)
        .params(gbt::GbtParams::default().with_estimators(30))
        .fit()?
        .model;
    let features = telemetry::FeatureSet::from_names(&["frequency_ghz"])?;
    Ok(ControllerSpec::ml(model, &features, 0.05))
}

fn default_backend() -> Backend {
    if cfg!(target_os = "linux") {
        Backend::Epoll
    } else {
        Backend::Threads
    }
}

fn spec() -> cli::Spec {
    cli::Spec::new(
        "boreas_serve",
        "Boreas online mitigation daemon: telemetry frames in, V/f decisions out",
    )
    .value_flag(
        "addr",
        "host:port",
        Some("127.0.0.1:7070"),
        "frame ingress socket",
    )
    .value_flag(
        "metrics-addr",
        "host:port",
        Some("127.0.0.1:7071"),
        "GET /metrics and /healthz",
    )
    .value_flag(
        "backend",
        "threads|epoll",
        None,
        "I/O backend (default: epoll on Linux, threads elsewhere)",
    )
    .value_flag("shards", "n", Some("2"), "shard worker threads")
    .value_flag(
        "queue-depth",
        "n",
        Some("64"),
        "bounded per-shard queue; full queues reject, not block",
    )
    .value_flag(
        "io-threads",
        "n",
        Some("1"),
        "reactor threads (epoll backend)",
    )
    .value_flag(
        "max-connections",
        "n",
        Some("1024"),
        "concurrent-connection cap enforced at accept",
    )
    .value_flag(
        "idle-timeout-ms",
        "ms",
        Some("60000"),
        "reap connections silent for this long",
    )
    .switch(
        "smoke",
        "serve the synthetic smoke GBT model as an ML05 controller",
    )
}

fn main() -> Result<()> {
    signal::install();
    let args = spec().parse_env()?;

    let backend = match args.get("backend") {
        Some(raw) => raw.parse::<Backend>()?,
        None => default_backend(),
    };
    let addr = args.get("addr").unwrap_or_default().to_string();
    let metrics_addr = args.get("metrics-addr").unwrap_or_default().to_string();
    let shards = args.parsed::<usize>("shards")?.unwrap_or(2);
    let queue_depth = args.parsed::<usize>("queue-depth")?.unwrap_or(64);
    let io_threads = args.parsed::<usize>("io-threads")?.unwrap_or(1);
    let max_connections = args.parsed::<usize>("max-connections")?.unwrap_or(1024);
    let idle_ms = args.parsed::<u64>("idle-timeout-ms")?.unwrap_or(60_000);
    let smoke = args.has("smoke");

    let vf = VfTable::paper();
    let controller = if smoke {
        smoke_ml_spec()?
    } else {
        ControllerSpec::thermal(vec![Some(70.0); vf.len()], 0.0)
    };

    let registry = Registry::new();
    let config = ServeConfig::builder()
        .backend(backend)
        .shards(shards)
        .queue_depth(queue_depth)
        .io_threads(io_threads)
        .max_connections(max_connections)
        .idle_timeout(Duration::from_millis(idle_ms))
        .controller(controller)
        .vf(vf)
        .registry(registry.clone())
        .build()?;
    let server = Server::bind(addr.as_str(), config)?;

    let metrics_listener = TcpListener::bind(metrics_addr.as_str())
        .map_err(|e| common::Error::server(ServerKind::Bind, "bind metrics", e.to_string()))?;
    let metrics_stop = Arc::new(AtomicBool::new(false));
    let metrics_thread =
        http::spawn_metrics_server(metrics_listener, registry.clone(), metrics_stop.clone());

    println!(
        "boreas-serve listening on {} ({} backend, {} shard worker{}, queue depth {}, {} controller); metrics on http://{}/metrics",
        server.local_addr(),
        server.backend(),
        shards,
        if shards == 1 { "" } else { "s" },
        queue_depth,
        if smoke { "smoke ML05" } else { "TH-00" },
        metrics_addr,
    );

    while !signal::shutdown_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }

    println!("boreas-serve: termination signal received, draining");
    server.request_shutdown();
    server.join()?;
    metrics_stop.store(true, Ordering::SeqCst);
    metrics_thread.join().map_err(|_| {
        common::Error::server(
            ServerKind::Join,
            "join",
            "metrics thread panicked".to_string(),
        )
    })?;

    let snap = registry.snapshot();
    let count = |name: &str| match snap.family(name).map(|f| &f.value) {
        Some(obs::MetricValue::Counter(v)) => *v,
        _ => 0,
    };
    println!(
        "boreas-serve: drained cleanly — {} frames, {} decisions, {} rejected",
        count("boreas_serve_frames_total"),
        count("boreas_serve_decisions_total"),
        count("boreas_serve_rejected_total"),
    );
    Ok(())
}
