//! Fig. 8: dynamic closed-loop traces of every unseen test workload
//! under TH-00 and Boreas (ML05) for 150 timesteps (12 ms).
//!
//! Paper shape: Boreas runs at the same frequency or one-two 250 MHz
//! steps above the thermal model (except hmmer), and no test workload
//! ever reaches severity 1.0 under either controller.
//!
//! Both controllers over all test workloads form one
//! [`engine::Scenario`]; the per-interval traces come straight off the
//! engine's result rows.

use boreas_bench::experiments::{Experiment, LOOP_STEPS};
use engine::{ControllerSpec, Scenario};
use workloads::WorkloadSpec;

fn main() {
    let exp = Experiment::paper().expect("paper config");
    let thresholds = exp.trained_thresholds().expect("trained thresholds");
    let (model, features) = exp.boreas_model().expect("model");
    let tests = WorkloadSpec::test_set();

    let controllers = vec![
        ControllerSpec::thermal(thresholds, 0.0),
        ControllerSpec::ml(model, &features, 0.05),
    ];
    let scenario = Scenario::closed_loop(
        "fig8-dynamic-runs",
        tests.clone(),
        exp.vf.clone(),
        LOOP_STEPS,
        controllers,
    );
    let report = exp
        .session()
        .expect("session")
        .run(&scenario)
        .expect("dynamic runs");
    let rows: Vec<_> = report.loop_runs().collect();

    let mut any_incursion = false;
    for (w_idx, w) in tests.iter().enumerate() {
        println!("== {}", w.name);
        let pair = &rows[w_idx * 2..w_idx * 2 + 2];
        for row in pair {
            assert_eq!(row.workload, w.name, "engine row order");
            println!(
                "  {:<6} avg {:.3} GHz, peak severity {:.3}, incursions {}",
                row.controller, row.avg_frequency_ghz, row.peak_severity, row.incursions
            );
            print!("    f(GHz):  ");
            for f in &row.interval_freq_ghz {
                print!("{f:.2} ");
            }
            println!();
            print!("    max sev: ");
            for s in &row.interval_peak_severity {
                print!("{s:.2} ");
            }
            println!();
            any_incursion |= row.incursions > 0;
        }
        println!(
            "  Boreas vs TH-00: {:+.1}%\n",
            (pair[1].avg_frequency_ghz / pair[0].avg_frequency_ghz - 1.0) * 100.0
        );
    }
    println!(
        "any incursion across all test workloads and both controllers: {} (paper: none)",
        if any_incursion { "YES (!)" } else { "no" }
    );

    boreas_bench::print_engine_footer(&report);
}
