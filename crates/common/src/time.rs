//! Simulation time.
//!
//! The whole pipeline is discretised at the paper's sampling interval of
//! **80 µs** ([`STEP_MICROS`]); the DVFS controller acts once every **12**
//! steps ([`STEPS_PER_DECISION`]), i.e. every 960 µs ("around every 1 ms"
//! in the paper). [`SimTime`] is an integer count of microseconds so that
//! time comparisons are exact and never accumulate floating-point error.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Length of one telemetry/thermal sampling step, in microseconds.
///
/// The paper extracts one feature row "every 80 microseconds".
pub const STEP_MICROS: u64 = 80;

/// Number of sampling steps between two controller decisions.
///
/// `12 × 80 µs = 960 µs`, the paper's decision (and sensor-delay) interval.
pub const STEPS_PER_DECISION: u64 = 12;

/// Microseconds between two controller decisions (960).
pub const DECISION_MICROS: u64 = STEP_MICROS * STEPS_PER_DECISION;

/// A point in simulated time, stored as whole microseconds since the start
/// of the run.
///
/// # Examples
///
/// ```
/// use boreas_common::time::{SimTime, STEP_MICROS};
///
/// let mut t = SimTime::ZERO;
/// t = t.advance_steps(12);
/// assert_eq!(t.as_micros(), 12 * STEP_MICROS);
/// assert!(t.is_decision_boundary());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from a raw microsecond count.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        Self(micros)
    }

    /// Creates a time from a whole number of 80 µs sampling steps.
    #[inline]
    pub const fn from_steps(steps: u64) -> Self {
        Self(steps * STEP_MICROS)
    }

    /// Raw microsecond count.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time in (fractional) milliseconds, for plotting and reports.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Index of the sampling step this time falls in.
    #[inline]
    pub const fn step_index(self) -> u64 {
        self.0 / STEP_MICROS
    }

    /// Returns the time advanced by `steps` sampling steps.
    #[must_use]
    #[inline]
    pub const fn advance_steps(self, steps: u64) -> Self {
        Self(self.0 + steps * STEP_MICROS)
    }

    /// `true` when this time lies exactly on a controller-decision boundary
    /// (a multiple of 960 µs).
    #[inline]
    pub const fn is_decision_boundary(self) -> bool {
        self.0.is_multiple_of(DECISION_MICROS)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ms", self.as_millis_f64())
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self` (u64 underflow).
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_interval_is_960_micros() {
        assert_eq!(DECISION_MICROS, 960);
    }

    #[test]
    fn step_indexing() {
        assert_eq!(SimTime::from_micros(0).step_index(), 0);
        assert_eq!(SimTime::from_micros(79).step_index(), 0);
        assert_eq!(SimTime::from_micros(80).step_index(), 1);
        assert_eq!(SimTime::from_steps(150).as_micros(), 12_000);
    }

    #[test]
    fn decision_boundaries() {
        assert!(SimTime::ZERO.is_decision_boundary());
        assert!(SimTime::from_steps(12).is_decision_boundary());
        assert!(!SimTime::from_steps(11).is_decision_boundary());
        assert!(SimTime::from_steps(24).is_decision_boundary());
    }

    #[test]
    fn arithmetic_and_display() {
        let a = SimTime::from_micros(1_500);
        let b = SimTime::from_micros(500);
        assert_eq!((a - b).as_micros(), 1_000);
        assert_eq!((a + b).as_micros(), 2_000);
        assert_eq!(format!("{a}"), "1.500 ms");
    }

    #[test]
    fn conversions() {
        let t = SimTime::from_micros(2_400_000);
        assert_eq!(t.as_secs_f64(), 2.4);
        assert_eq!(t.as_millis_f64(), 2_400.0);
    }
}
