/root/repo/target/debug/deps/boreas_core-b45a6a87fdd2e50f.d: crates/boreas-core/src/lib.rs crates/boreas-core/src/controller.rs crates/boreas-core/src/critical.rs crates/boreas-core/src/oracle.rs crates/boreas-core/src/resilient.rs crates/boreas-core/src/runner.rs crates/boreas-core/src/training.rs crates/boreas-core/src/vf.rs Cargo.toml

/root/repo/target/debug/deps/libboreas_core-b45a6a87fdd2e50f.rmeta: crates/boreas-core/src/lib.rs crates/boreas-core/src/controller.rs crates/boreas-core/src/critical.rs crates/boreas-core/src/oracle.rs crates/boreas-core/src/resilient.rs crates/boreas-core/src/runner.rs crates/boreas-core/src/training.rs crates/boreas-core/src/vf.rs Cargo.toml

crates/boreas-core/src/lib.rs:
crates/boreas-core/src/controller.rs:
crates/boreas-core/src/critical.rs:
crates/boreas-core/src/oracle.rs:
crates/boreas-core/src/resilient.rs:
crates/boreas-core/src/runner.rs:
crates/boreas-core/src/training.rs:
crates/boreas-core/src/vf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
