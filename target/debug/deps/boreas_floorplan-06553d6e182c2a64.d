/root/repo/target/debug/deps/boreas_floorplan-06553d6e182c2a64.d: crates/floorplan/src/lib.rs crates/floorplan/src/grid.rs crates/floorplan/src/placement.rs crates/floorplan/src/plan.rs crates/floorplan/src/rect.rs crates/floorplan/src/unit.rs

/root/repo/target/debug/deps/libboreas_floorplan-06553d6e182c2a64.rlib: crates/floorplan/src/lib.rs crates/floorplan/src/grid.rs crates/floorplan/src/placement.rs crates/floorplan/src/plan.rs crates/floorplan/src/rect.rs crates/floorplan/src/unit.rs

/root/repo/target/debug/deps/libboreas_floorplan-06553d6e182c2a64.rmeta: crates/floorplan/src/lib.rs crates/floorplan/src/grid.rs crates/floorplan/src/placement.rs crates/floorplan/src/plan.rs crates/floorplan/src/rect.rs crates/floorplan/src/unit.rs

crates/floorplan/src/lib.rs:
crates/floorplan/src/grid.rs:
crates/floorplan/src/placement.rs:
crates/floorplan/src/plan.rs:
crates/floorplan/src/rect.rs:
crates/floorplan/src/unit.rs:
