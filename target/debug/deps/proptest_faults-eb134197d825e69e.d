/root/repo/target/debug/deps/proptest_faults-eb134197d825e69e.d: crates/faults/tests/proptest_faults.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_faults-eb134197d825e69e.rmeta: crates/faults/tests/proptest_faults.rs Cargo.toml

crates/faults/tests/proptest_faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
