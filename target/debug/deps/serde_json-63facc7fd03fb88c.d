/root/repo/target/debug/deps/serde_json-63facc7fd03fb88c.d: /tmp/vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-63facc7fd03fb88c.rlib: /tmp/vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-63facc7fd03fb88c.rmeta: /tmp/vendor/serde_json/src/lib.rs

/tmp/vendor/serde_json/src/lib.rs:
