/root/repo/target/release/deps/fig4_thermal_case_study-1fadbc83c9bbea90.d: crates/bench/src/bin/fig4_thermal_case_study.rs

/root/repo/target/release/deps/fig4_thermal_case_study-1fadbc83c9bbea90: crates/bench/src/bin/fig4_thermal_case_study.rs

crates/bench/src/bin/fig4_thermal_case_study.rs:
