//! Histogram-based tree growth with deterministic parallel reduction.
//!
//! The LightGBM-style recipe on top of [`crate::binned`]:
//!
//! * per-node **gradient/count histograms** — one `(Σg, rows)` cell per
//!   feature bin — accumulated by streaming the row-major code matrix;
//! * the **parent − sibling subtraction trick**: per split only the
//!   smaller child's histogram is accumulated from rows; the larger
//!   child's is the elementwise difference from the parent's;
//! * split finding as a prefix scan over bins with the same XGBoost
//!   gain `½·[G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)] − γ` the exact
//!   path uses (squared loss ⇒ hessians are row counts, kept as exact
//!   `u32`s).
//!
//! # Determinism
//!
//! Results are **bit-identical at any thread count**. Rows are cut into
//! fixed [`BLOCK_ROWS`]-sized blocks; every block's partial histogram is
//! computed independently (threads take blocks round-robin) and the
//! partials are merged *in block order*, so each bin's gradient sum is
//! always the same left-to-right float reduction regardless of how many
//! threads produced the partials. The single-thread path runs the
//! identical block/merge code.

use crate::binned::BinnedDataset;
use crate::params::GbtParams;
use crate::tree::{Node, RegressionTree};

/// Rows per accumulation block. Fixed — never derived from the thread
/// count — because block boundaries define the float-merge order.
pub const BLOCK_ROWS: usize = 4096;

/// Sentinel in the per-level row→slot map: row not in any node that is
/// being accumulated this level.
const SKIP: u16 = u16::MAX;

/// One node's histogram: per-bin gradient sums and row counts, flat
/// across all features (`BinnedDataset::offset` indexing).
#[derive(Clone)]
struct Hist {
    g: Vec<f64>,
    n: Vec<u32>,
}

impl Hist {
    fn zeroed(width: usize) -> Hist {
        Hist {
            g: vec![0.0; width],
            n: vec![0; width],
        }
    }

    /// `self ← self − other` elementwise (the subtraction trick).
    fn subtract(&mut self, other: &Hist) {
        for (a, b) in self.g.iter_mut().zip(&other.g) {
            *a -= b;
        }
        for (a, b) in self.n.iter_mut().zip(&other.n) {
            *a -= b;
        }
    }
}

/// A frontier node during level-wise growth.
struct FrontNode {
    id: u32,
    g: f64,
    n: u32,
    /// `Some` once this node's histogram is available.
    hist: Option<Hist>,
    /// `true` → accumulate from rows; `false` → subtract from parent.
    accumulate: bool,
    /// For subtract nodes: the parent's histogram (taken at split time)
    /// and the sibling's frontier index to subtract once it is ready.
    parent_hist: Option<Hist>,
    sibling: usize,
}

/// The best split found for one node.
#[derive(Clone, Copy)]
struct Best {
    gain: f64,
    feature: u32,
    bin: u16,
    g_left: f64,
    n_left: u32,
}

/// Accumulates histograms for the marked rows: `row_slot[r]` selects
/// which of the `n_slots` node histograms row `r` belongs to ([`SKIP`]
/// for none). Returns one flat histogram of width
/// `n_slots × total_bins`, produced by merging fixed-size block partials
/// in block order (see module docs).
fn accumulate(
    binned: &BinnedDataset,
    grad: &[f64],
    row_slot: &[u16],
    n_slots: usize,
    threads: usize,
) -> Hist {
    let n_rows = binned.len();
    let n_features = binned.num_features();
    let total_bins = binned.total_bins();
    let width = n_slots * total_bins;
    let offsets: Vec<u32> = (0..n_features).map(|f| binned.offset(f)).collect();
    let n_blocks = n_rows.div_ceil(BLOCK_ROWS);

    let block_partial = |b: usize| -> Hist {
        let mut part = Hist::zeroed(width);
        let start = b * BLOCK_ROWS;
        let end = (start + BLOCK_ROWS).min(n_rows);
        for r in start..end {
            let slot = row_slot[r];
            if slot == SKIP {
                continue;
            }
            let g = grad[r];
            let base = slot as usize * total_bins;
            let codes = binned.row_codes(r);
            for (&code, &off) in codes.iter().zip(&offsets) {
                let idx = base + (off + code as u32) as usize;
                part.g[idx] += g;
                part.n[idx] += 1;
            }
        }
        part
    };

    let mut total = Hist::zeroed(width);
    let mut merge = |part: &Hist| {
        for (a, b) in total.g.iter_mut().zip(&part.g) {
            *a += b;
        }
        for (a, b) in total.n.iter_mut().zip(&part.n) {
            *a += b;
        }
    };

    if threads <= 1 || n_blocks <= 1 {
        for b in 0..n_blocks {
            merge(&block_partial(b));
        }
    } else {
        let t = threads.min(n_blocks);
        // Thread k takes blocks k, k+t, k+2t, … and returns the partials
        // tagged with their block index; the merge below runs strictly
        // in block order, so the reduction is thread-count invariant.
        let tagged: Vec<Vec<(usize, Hist)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..t)
                .map(|k| {
                    let block_partial = &block_partial;
                    scope.spawn(move || {
                        (k..n_blocks)
                            .step_by(t)
                            .map(|b| (b, block_partial(b)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("histogram worker"))
                .collect()
        });
        let mut by_block: Vec<Option<Hist>> = (0..n_blocks).map(|_| None).collect();
        for (b, part) in tagged.into_iter().flatten() {
            by_block[b] = Some(part);
        }
        for part in by_block.into_iter().flatten() {
            merge(&part);
        }
    }
    total
}

/// Scans one node's histogram for its best split (bin-boundary prefix
/// scan). Features ascending, boundaries ascending, strict `>` — the
/// same first-wins tie-breaking as the exact-greedy reference.
fn best_split(
    binned: &BinnedDataset,
    hist: &Hist,
    g: f64,
    n: u32,
    params: &GbtParams,
) -> Option<Best> {
    let h = f64::from(n);
    let lambda = params.lambda;
    let parent_score = g * g / (h + lambda);
    let mut best: Option<Best> = None;
    for f in 0..binned.num_features() {
        let nb = binned.cuts().num_bins(f);
        if nb < 2 {
            continue;
        }
        let off = binned.offset(f) as usize;
        let mut gl = 0.0f64;
        let mut nl = 0u32;
        for b in 0..nb - 1 {
            gl += hist.g[off + b];
            nl += hist.n[off + b];
            let hl = f64::from(nl);
            let hr = f64::from(n - nl);
            if hl < params.min_child_weight || hr < params.min_child_weight {
                continue;
            }
            let gr = g - gl;
            let gain = 0.5 * (gl * gl / (hl + lambda) + gr * gr / (hr + lambda) - parent_score)
                - params.gamma;
            if best.is_none_or(|x| gain > x.gain) {
                best = Some(Best {
                    gain,
                    feature: f as u32,
                    bin: b as u16,
                    g_left: gl,
                    n_left: nl,
                });
            }
        }
    }
    best
}

/// Grows one tree on the binned dataset and gradient vector. Returns the
/// tree (with real-valued thresholds, interchangeable with the exact
/// path's trees) and each row's final node id, which the boosting loop
/// uses to update predictions without re-walking trees.
fn grow_tree(
    binned: &BinnedDataset,
    grad: &[f64],
    params: &GbtParams,
    threads: usize,
) -> (RegressionTree, Vec<u32>) {
    let n_rows = binned.len();
    let total_bins = binned.total_bins();
    let lambda = params.lambda;

    let mut nodes: Vec<Node> = vec![Node::leaf(0.0)];
    let mut node_of_row: Vec<u32> = vec![0; n_rows];

    let mut frontier = vec![FrontNode {
        id: 0,
        g: 0.0, // filled from the root histogram below
        n: n_rows as u32,
        hist: None,
        accumulate: true,
        parent_hist: None,
        sibling: usize::MAX,
    }];

    let mut depth_reached = 0usize;
    for depth in 0..params.max_depth {
        if frontier.is_empty() {
            break;
        }

        // 1. Histograms: accumulate the marked nodes in one pass …
        let accum: Vec<usize> = (0..frontier.len())
            .filter(|&i| frontier[i].accumulate)
            .collect();
        if !accum.is_empty() {
            let mut slot_of_id = vec![SKIP; nodes.len()];
            for (slot, &i) in accum.iter().enumerate() {
                slot_of_id[frontier[i].id as usize] = slot as u16;
            }
            let row_slot: Vec<u16> = node_of_row
                .iter()
                .map(|&id| slot_of_id[id as usize])
                .collect();
            let flat = accumulate(binned, grad, &row_slot, accum.len(), threads);
            for (slot, &i) in accum.iter().enumerate() {
                let lo = slot * total_bins;
                frontier[i].hist = Some(Hist {
                    g: flat.g[lo..lo + total_bins].to_vec(),
                    n: flat.n[lo..lo + total_bins].to_vec(),
                });
            }
        }
        // … then derive the subtract nodes from parent − sibling.
        for i in 0..frontier.len() {
            if frontier[i].accumulate || frontier[i].hist.is_some() {
                continue;
            }
            let mut parent = frontier[i]
                .parent_hist
                .take()
                .expect("subtract node has parent hist");
            let sib = frontier[i].sibling;
            parent.subtract(
                frontier[sib]
                    .hist
                    .as_ref()
                    .expect("sibling accumulated first"),
            );
            frontier[i].hist = Some(parent);
        }
        if depth == 0 {
            // Root totals come off its own histogram: every row lands in
            // exactly one bin of feature 0.
            let root = &mut frontier[0];
            let hist = root.hist.as_ref().expect("root accumulated");
            let nb0 = binned.cuts().num_bins(0);
            root.g = hist.g[..nb0].iter().sum();
            debug_assert_eq!(hist.n[..nb0].iter().sum::<u32>(), root.n);
        }

        // 2. Split or finalise each frontier node.
        let mut next: Vec<FrontNode> = Vec::new();
        // Per-node routing info for this level, looked up via node id.
        let mut split_of_id: Vec<Option<(u32, u16, u32)>> = vec![None; nodes.len()];
        for fnode in &mut frontier {
            let (id, g_node, n_node) = (fnode.id, fnode.g, fnode.n);
            let best = {
                let hist = fnode.hist.as_ref().expect("frontier histogram ready");
                best_split(binned, hist, g_node, n_node, params)
            };
            match best {
                Some(b) if b.gain > 0.0 => {
                    let left_id = nodes.len() as u32;
                    let right_id = left_id + 1;
                    nodes.push(Node::leaf(0.0));
                    nodes.push(Node::leaf(0.0));
                    let node = &mut nodes[id as usize];
                    node.is_leaf = false;
                    node.feature = b.feature;
                    node.threshold = binned.cuts().threshold(b.feature as usize, b.bin as usize);
                    node.left = left_id;
                    node.right = right_id;
                    node.gain = b.gain;
                    split_of_id[id as usize] = Some((b.feature, b.bin, left_id));
                    depth_reached = depth + 1;

                    let (gl, nl) = (b.g_left, b.n_left);
                    let (gr, nr) = (g_node - gl, n_node - nl);
                    // Accumulate the smaller child, subtract the larger;
                    // ties go left so the choice is deterministic.
                    let left_small = nl <= nr;
                    let parent_hist = fnode.hist.take();
                    let (left_parent, right_parent) = if left_small {
                        (None, parent_hist)
                    } else {
                        (parent_hist, None)
                    };
                    let base = next.len();
                    next.push(FrontNode {
                        id: left_id,
                        g: gl,
                        n: nl,
                        hist: None,
                        accumulate: left_small,
                        parent_hist: left_parent,
                        sibling: base + 1,
                    });
                    next.push(FrontNode {
                        id: right_id,
                        g: gr,
                        n: nr,
                        hist: None,
                        accumulate: !left_small,
                        parent_hist: right_parent,
                        sibling: base,
                    });
                }
                _ => {
                    nodes[id as usize].value = -g_node / (f64::from(n_node) + lambda);
                }
            }
        }

        // 3. Route rows of split nodes to their children by bin code.
        if !next.is_empty() {
            for (r, id) in node_of_row.iter_mut().enumerate() {
                if let Some((f, bin, left_id)) = split_of_id[*id as usize] {
                    let code = binned.row_codes(r)[f as usize];
                    *id = if u16::from(code) <= bin {
                        left_id
                    } else {
                        left_id + 1
                    };
                }
            }
        }
        frontier = next;
    }

    // Nodes still on the frontier at max depth become leaves.
    for fnode in &frontier {
        nodes[fnode.id as usize].value = -fnode.g / (f64::from(fnode.n) + lambda);
    }

    (
        RegressionTree::from_parts(nodes, depth_reached),
        node_of_row,
    )
}

/// Boosts a full ensemble on a binned dataset. Returns
/// `(base_score, trees)`; the caller assembles the [`crate::GbtModel`].
///
/// Prediction updates route rows through the freshly grown tree by
/// their stored node assignment, so no float comparisons are re-run;
/// the resulting ensemble still predicts raw feature rows because the
/// trees carry the real-valued cut thresholds (`x < threshold` agrees
/// with `code <= bin` by construction of [`crate::BinCuts`]).
pub(crate) fn boost(
    binned: &BinnedDataset,
    params: &GbtParams,
    threads: usize,
) -> (f64, Vec<RegressionTree>) {
    let n = binned.len();
    let targets = binned.targets();
    let base_score = targets.iter().sum::<f64>() / n as f64;

    let mut preds = vec![base_score; n];
    let mut grad = vec![0.0f64; n];
    let mut trees = Vec::with_capacity(params.n_estimators);
    for _ in 0..params.n_estimators {
        for i in 0..n {
            grad[i] = preds[i] - targets[i];
        }
        let (tree, node_of_row) = grow_tree(binned, &grad, params, threads);
        let nodes = tree.nodes();
        for (p, &id) in preds.iter_mut().zip(&node_of_row) {
            *p += params.learning_rate * nodes[id as usize].value;
        }
        trees.push(tree);
    }
    (base_score, trees)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn step_data() -> Dataset {
        let mut d = Dataset::new(vec!["x".into()]);
        for i in 0..100 {
            let x = i as f64 / 100.0;
            d.push_row(&[x], if x < 0.5 { 1.0 } else { 3.0 }, 0)
                .unwrap();
        }
        d
    }

    #[test]
    fn single_split_recovers_step_function() {
        let d = step_data();
        let binned = BinnedDataset::from_dataset(&d, 256).unwrap();
        let params = GbtParams {
            lambda: 0.0,
            max_depth: 1,
            ..GbtParams::default()
        };
        let grad: Vec<f64> = d.targets().iter().map(|y| -y).collect();
        let (tree, node_of_row) = grow_tree(&binned, &grad, &params, 1);
        assert_eq!(tree.depth(), 1);
        assert_eq!(tree.num_leaves(), 2);
        let root = tree.nodes()[0];
        assert!(!root.is_leaf);
        assert!(
            (root.threshold - 0.495).abs() < 0.006,
            "threshold {}",
            root.threshold
        );
        assert!((tree.predict(&[0.1]) - 1.0).abs() < 1e-9);
        assert!((tree.predict(&[0.9]) - 3.0).abs() < 1e-9);
        // Row→node assignments agree with walking the tree.
        for (r, &node) in node_of_row.iter().enumerate() {
            let leaf = node as usize;
            assert!(tree.nodes()[leaf].is_leaf);
            assert_eq!(tree.nodes()[leaf].value, tree.predict(&d.row(r)));
        }
    }

    #[test]
    fn thread_counts_are_bit_identical() {
        // > 1 block so the parallel path actually splits work.
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        for i in 0..10_000 {
            let a = ((i * 37) % 101) as f64 / 101.0;
            let b = ((i * 61) % 257) as f64 / 257.0;
            d.push_row(&[a, b], (a * 3.0 + b).sin(), 0).unwrap();
        }
        let binned = BinnedDataset::from_dataset(&d, 64).unwrap();
        let params = GbtParams::default().with_estimators(8);
        let one = boost(&binned, &params, 1);
        let two = boost(&binned, &params, 2);
        let four = boost(&binned, &params, 4);
        assert_eq!(one.0.to_bits(), two.0.to_bits());
        assert_eq!(one.1, two.1);
        assert_eq!(one.1, four.1);
    }

    #[test]
    fn subtraction_trick_matches_direct_accumulation() {
        // Grow to depth 2 and verify every internal node's children
        // stats are consistent (gl + gr == g etc. exactly for counts).
        let d = step_data();
        let binned = BinnedDataset::from_dataset(&d, 256).unwrap();
        let grad: Vec<f64> = d.targets().iter().map(|y| -y).collect();
        let params = GbtParams {
            lambda: 0.0,
            max_depth: 3,
            ..GbtParams::default()
        };
        let (tree, node_of_row) = grow_tree(&binned, &grad, &params, 1);
        // Leaf populations partition the rows.
        let mut counts = vec![0u32; tree.nodes().len()];
        for &id in &node_of_row {
            counts[id as usize] += 1;
        }
        let leaf_total: u32 = tree
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_leaf)
            .map(|(i, _)| counts[i])
            .sum();
        assert_eq!(leaf_total, d.len() as u32);
    }

    #[test]
    fn gamma_blocks_weak_splits() {
        let d = step_data();
        let binned = BinnedDataset::from_dataset(&d, 256).unwrap();
        let grad: Vec<f64> = d.targets().iter().map(|y| -y).collect();
        let params = GbtParams {
            gamma: 1e9,
            ..GbtParams::default()
        };
        let (tree, _) = grow_tree(&binned, &grad, &params, 1);
        assert_eq!(tree.num_leaves(), 1);
        // The lone leaf predicts -mean(g) = mean(y) at lambda-damped rate.
    }

    #[test]
    fn min_child_weight_blocks_tiny_children() {
        let d = step_data();
        let binned = BinnedDataset::from_dataset(&d, 256).unwrap();
        let grad: Vec<f64> = d.targets().iter().map(|y| -y).collect();
        let params = GbtParams {
            min_child_weight: 60.0,
            ..GbtParams::default()
        };
        let (tree, _) = grow_tree(&binned, &grad, &params, 1);
        assert_eq!(tree.num_leaves(), 1);
    }
}
