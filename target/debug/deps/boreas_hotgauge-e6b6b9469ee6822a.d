/root/repo/target/debug/deps/boreas_hotgauge-e6b6b9469ee6822a.d: crates/hotgauge/src/lib.rs crates/hotgauge/src/events.rs crates/hotgauge/src/mltd.rs crates/hotgauge/src/pipeline.rs crates/hotgauge/src/severity.rs

/root/repo/target/debug/deps/boreas_hotgauge-e6b6b9469ee6822a: crates/hotgauge/src/lib.rs crates/hotgauge/src/events.rs crates/hotgauge/src/mltd.rs crates/hotgauge/src/pipeline.rs crates/hotgauge/src/severity.rs

crates/hotgauge/src/lib.rs:
crates/hotgauge/src/events.rs:
crates/hotgauge/src/mltd.rs:
crates/hotgauge/src/pipeline.rs:
crates/hotgauge/src/severity.rs:
