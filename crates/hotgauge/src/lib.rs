//! HotGauge-style hotspot metrics and the coupled simulation pipeline.
//!
//! This crate reimplements the two pieces of HotGauge the paper builds
//! on:
//!
//! * the **metrics** — [`mltd`] computes the Maximum Local Temperature
//!   Difference of every die cell, and [`severity`] combines absolute
//!   temperature with MLTD into the scalar *Hotspot-Severity* of Fig. 1
//!   (1.0 = the chip is in immediate danger);
//! * the **pipeline** — [`Pipeline`] couples the performance model
//!   (`perfsim`), the power model (`powersim`) and the thermal solver
//!   (`thermal`) into the per-80 µs simulation loop that every experiment
//!   in the paper runs on, including delayed thermal sensors and
//!   per-step severity evaluation.
//!
//! # Severity reconstruction
//!
//! The paper specifies three conditions where severity = 1.0: 115 °C at
//! zero MLTD, 80 °C at 40 °C MLTD, and ("somewhere between") ~95 °C at
//! 20 °C MLTD. We use the affine form
//!
//! ```text
//! severity = (T + 0.875·MLTD − T_base) / (T_crit − T_base)
//! ```
//!
//! with `T_base = 45 °C`, `T_crit = 115 °C`, which satisfies the first two
//! points exactly and yields 0.96 for the third — consistent with the
//! paper's wording. All parameters are configurable via
//! [`SeverityParams`].
//!
//! # Examples
//!
//! ```no_run
//! use boreas_hotgauge::{PipelineConfig};
//! use workloads::WorkloadSpec;
//! use common::units::{GigaHertz, Volts};
//!
//! let pipeline = PipelineConfig::paper().build()?;
//! let spec = WorkloadSpec::by_name("gromacs")?;
//! let outcome = pipeline.run_fixed(&spec, GigaHertz::new(4.5), Volts::new(1.15), 150)?;
//! println!("peak severity {:.3}", outcome.peak_severity.value());
//! # Ok::<(), common::Error>(())
//! ```

pub mod events;
pub mod mltd;
pub mod pipeline;
pub mod severity;

pub use events::{detect_events, summarize, EventSummary, HotspotClass, HotspotEvent};
pub use mltd::{MltdMap, MltdScratch};
pub use pipeline::{
    FixedRunOutcome, KernelBreakdown, Pipeline, PipelineConfig, SimRun, StepRecord,
};
pub use severity::{Severity, SeverityParams};
