/root/repo/target/debug/deps/proptest_solver_equiv-1ca85b9b54cd2df0.d: crates/thermal/tests/proptest_solver_equiv.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_solver_equiv-1ca85b9b54cd2df0.rmeta: crates/thermal/tests/proptest_solver_equiv.rs Cargo.toml

crates/thermal/tests/proptest_solver_equiv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
