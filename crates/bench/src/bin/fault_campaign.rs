//! Fault-injection campaign: plain vs resilient ML05 under deterministic
//! sensor/telemetry faults.
//!
//! Sweeps fault type × injection rate across the unseen test workloads.
//! For every cell the same seeded [`FaultPlan`] corrupts the telemetry
//! the controller observes (accounting stays on the truth), once with
//! the plain ML05 controller and once with the same controller wrapped
//! in a resilient supervisor. The wrapper's validation + degradation
//! ladder eliminates most incursion cells the plain controller, fed the
//! same corrupted stream, fails on. It is not a silver bullet: heavy
//! in-band noise that stays inside the plausibility bounds is accepted
//! as genuine, and the resulting recover/degrade oscillation can still
//! let incursions through (and trades away frequency everywhere else).
//!
//! The whole campaign — workloads × (fault kind × rate) × {plain,
//! resilient} — is a single [`engine::Scenario`] executed by the
//! work-stealing [`engine::Session`].
//!
//! Usage: `fault_campaign [--seed N] [--steps N] [--smoke]
//! [--engine-faults] [--metrics-out BASE] [--resume]`.
//! The campaign is a pure function of the seed: the closing digest line
//! is bit-identical across runs with the same seed (observability rides
//! alongside and never perturbs it). `--smoke` shrinks the grid (2
//! workloads, one rate, 24 steps, cheap stand-in controllers) for CI;
//! `--engine-faults` additionally arms an [`engine`-level
//! fault plan](faults::EngineFaultPlan) — an injected job panic absorbed
//! by the supervisor's retry, plus an artifact bit flip caught by the
//! cache checksum on the next probe — which must leave the digest
//! untouched.

use boreas_bench::experiments::{Experiment, LOOP_STEPS};
use boreas_bench::Reporting;
use engine::{ControllerSpec, FaultCell, LoopRunResult, Scenario};
use faults::{EngineFault, EngineFaultKind, EngineFaultPlan, Fault, FaultKind, FaultPlan};
use workloads::WorkloadSpec;

/// One fault archetype of the sweep; the campaign crosses these with the
/// injection rates below.
const FAULT_KINDS: [FaultKind; 5] = [
    FaultKind::StuckAt { value_c: 45.0 },
    FaultKind::Dropped,
    FaultKind::Late { steps: 24 },
    FaultKind::Noise { std_c: 8.0 },
    FaultKind::CounterZero,
];

/// Per-step firing probabilities swept for every fault kind.
const RATES: [f64; 3] = [0.05, 0.25, 1.0];

struct Args {
    seed: u64,
    steps: Option<usize>,
    smoke: bool,
    engine_faults: bool,
}

fn parse_args(rest: &[String]) -> Args {
    let mut parsed = Args {
        seed: 2023,
        steps: None,
        smoke: false,
        engine_faults: false,
    };
    let mut args = rest.iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                parsed.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs an integer value");
            }
            "--steps" => {
                parsed.steps = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--steps needs an integer value"),
                );
            }
            "--smoke" => parsed.smoke = true,
            "--engine-faults" => parsed.engine_faults = true,
            other => panic!(
                "unknown argument {other} \
                 (expected --seed/--steps/--smoke/--engine-faults/--metrics-out/--resume)"
            ),
        }
    }
    parsed
}

/// Smoke-mode stand-in controllers (mirrors `fig8_dynamic_runs`): flat
/// 70 °C thermal thresholds for the resilient fallback and a tiny
/// frequency-only model, so the full plain-vs-resilient path runs in
/// seconds.
fn smoke_controllers(vf_len: usize) -> Vec<ControllerSpec> {
    let mut d = gbt::Dataset::new(vec!["frequency_ghz".to_string()]);
    for i in 0..200 {
        let f = 2.0 + 3.0 * (i as f64 / 200.0);
        d.push_row(&[f], f / 5.0, (i % 2) as u32)
            .expect("synthetic row");
    }
    let model = gbt::GbtModel::train(&d, &gbt::GbtParams::default().with_estimators(30))
        .expect("tiny model");
    let features = telemetry::FeatureSet::from_names(&["frequency_ghz"]).expect("feature");
    let thresholds = vec![Some(70.0); vf_len];
    vec![
        ControllerSpec::ml(model.clone(), &features, 0.05),
        ControllerSpec::resilient_ml(model, &features, 0.05, thresholds, 0),
    ]
}

/// The engine-level fault plan for `--engine-faults`: job 0 panics on
/// its first attempt (the default retry absorbs it) and job 1's artifact
/// is bit-flipped after persist (the cache checksum quarantines it on
/// the next probe). Neither may change a single result byte.
fn engine_fault_plan(seed: u64) -> EngineFaultPlan {
    EngineFaultPlan::new(seed)
        .with(EngineFault::new(EngineFaultKind::JobPanic { fail_attempts: 1 }).on_job(0))
        .with(EngineFault::new(EngineFaultKind::ArtifactBitFlip).on_job(1))
}

/// Builds the plan for one campaign cell. The fault arms after the
/// second decision interval, so the controller first sees healthy
/// telemetry (and the resilient wrapper banks last-known-good values).
fn cell_plan(seed: u64, kind: FaultKind, rate: f64) -> FaultPlan {
    FaultPlan::new(seed).with(
        Fault::new(kind)
            .during(24, usize::MAX)
            .with_probability(rate),
    )
}

/// Mixes an outcome into the campaign digest (SplitMix64 finalizer).
fn mix(h: u64, v: u64) -> u64 {
    let mut z = (h ^ v).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn digest_row(h: u64, row: &LoopRunResult) -> u64 {
    let h = mix(h, row.incursions as u64);
    let h = mix(h, row.avg_frequency_ghz.to_bits());
    mix(h, row.final_idx as u64)
}

fn main() {
    let reporting = Reporting::from_args();
    let args = parse_args(reporting.rest());
    let seed = args.seed;
    let exp = Experiment::paper()
        .expect("paper config")
        .observe(&reporting.obs);

    let (name, workloads, steps, rates, controllers) = if args.smoke {
        let workloads: Vec<WorkloadSpec> = WorkloadSpec::test_set().into_iter().take(2).collect();
        let controllers = smoke_controllers(exp.vf.len());
        let steps = args.steps.unwrap_or(24);
        (
            "fault-campaign-smoke",
            workloads,
            steps,
            &RATES[1..2],
            controllers,
        )
    } else {
        let thresholds = exp.trained_thresholds().expect("trained thresholds");
        let (model, features) = exp.boreas_model().expect("model");
        let controllers = vec![
            ControllerSpec::ml(model.clone(), &features, 0.05),
            ControllerSpec::resilient_ml(model, &features, 0.05, thresholds, 0),
        ];
        let steps = args.steps.unwrap_or(LOOP_STEPS);
        (
            "fault-campaign",
            WorkloadSpec::test_set(),
            steps,
            &RATES[..],
            controllers,
        )
    };

    // Cell order (kind-major, then rate) and the plain-then-resilient
    // controller order reproduce the digest sequence of the historical
    // bespoke loop.
    let mut cells = Vec::with_capacity(FAULT_KINDS.len() * rates.len());
    for kind in FAULT_KINDS {
        for &rate in rates {
            let plan = cell_plan(seed, kind, rate);
            plan.validate().expect("campaign plan");
            cells.push(FaultCell::new(format!("{}@{rate}", kind.name()), plan));
        }
    }
    let scenario = Scenario::closed_loop(name, workloads, exp.vf.clone(), steps, controllers)
        .with_faults(cells);
    let mut session = exp.session().expect("session");
    if args.engine_faults {
        let plan = engine_fault_plan(seed);
        println!(
            "engine-fault plan armed: job-panic on job 0 (1 attempt), \
             artifact-bit-flip on job 1 — digest must match a clean run"
        );
        session = session.inject_engine_faults(plan);
    }
    let report = reporting.execute(&session, &scenario).expect("campaign");
    assert!(
        report.is_complete(),
        "campaign quarantined jobs: {:?}",
        report.quarantined
    );

    println!("fault campaign: seed {seed}, {steps} steps/run");
    println!(
        "{:<10} {:<16} {:>5} | {:>9} {:>8} | {:>9} {:>8} {:>14}",
        "workload", "fault", "rate", "plain inc", "plain f", "resil inc", "resil f", "worst stage"
    );

    let mut digest = seed;
    let mut plain_failures = 0usize;
    let mut resilient_failures = 0usize;
    let rows: Vec<_> = report.loop_runs().collect();
    for pair in rows.chunks(2) {
        let (plain, resilient) = (pair[0], pair[1]);
        let (fault, rate) = plain
            .fault
            .as_deref()
            .and_then(|f| f.split_once('@'))
            .expect("campaign rows carry a fault label");
        println!(
            "{:<10} {:<16} {:>5.2} | {:>9} {:>8.3} | {:>9} {:>8.3} {:>14}",
            plain.workload,
            fault,
            rate.parse::<f64>().expect("rate in label"),
            plain.incursions,
            plain.avg_frequency_ghz,
            resilient.incursions,
            resilient.avg_frequency_ghz,
            resilient.worst_stage.as_deref().unwrap_or("?"),
        );
        plain_failures += usize::from(plain.incursions > 0);
        resilient_failures += usize::from(resilient.incursions > 0);
        digest = digest_row(digest, plain);
        digest = digest_row(digest, resilient);
    }

    let n_cells = rows.len() / 2;
    println!(
        "\ncells with incursions: plain {plain_failures}/{n_cells}, resilient {resilient_failures}/{n_cells}"
    );
    println!("campaign digest: {digest:016x} (same seed => same digest)");
    reporting.finish(Some(&report)).expect("reporting");
}
