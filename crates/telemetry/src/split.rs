//! The Table III train/test construction.

use crate::dataset::{build_dataset, DatasetSpec};
use crate::features::FeatureSet;
use common::units::{GigaHertz, Volts};
use common::Result;
use gbt::Dataset;
use hotgauge::Pipeline;
use workloads::WorkloadSpec;

/// A train/test dataset pair with the workload lists that produced it.
#[derive(Debug, Clone)]
pub struct TrainTest {
    /// Instances from the 20 training workloads.
    pub train: Dataset,
    /// Instances from the 7 unseen test workloads.
    pub test: Dataset,
    /// The training workloads, in group-label order.
    pub train_workloads: Vec<WorkloadSpec>,
    /// The test workloads, in group-label order.
    pub test_workloads: Vec<WorkloadSpec>,
}

/// Builds the training dataset (20 workloads of Table III).
///
/// # Errors
///
/// Propagates pipeline/extraction errors.
pub fn build_train_dataset(
    pipeline: &Pipeline,
    features: &FeatureSet,
    vf_points: &[(GigaHertz, Volts)],
    spec: &DatasetSpec,
) -> Result<Dataset> {
    build_dataset(
        pipeline,
        features,
        &WorkloadSpec::train_set(),
        vf_points,
        spec,
    )
}

/// Builds the test dataset (7 unseen workloads of Table III).
///
/// # Errors
///
/// Propagates pipeline/extraction errors.
pub fn build_test_dataset(
    pipeline: &Pipeline,
    features: &FeatureSet,
    vf_points: &[(GigaHertz, Volts)],
    spec: &DatasetSpec,
) -> Result<Dataset> {
    build_dataset(
        pipeline,
        features,
        &WorkloadSpec::test_set(),
        vf_points,
        spec,
    )
}

/// Builds both sets.
///
/// # Errors
///
/// Propagates pipeline/extraction errors.
pub fn build_train_test(
    pipeline: &Pipeline,
    features: &FeatureSet,
    vf_points: &[(GigaHertz, Volts)],
    spec: &DatasetSpec,
) -> Result<TrainTest> {
    Ok(TrainTest {
        train: build_train_dataset(pipeline, features, vf_points, spec)?,
        test: build_test_dataset(pipeline, features, vf_points, spec)?,
        train_workloads: WorkloadSpec::train_set(),
        test_workloads: WorkloadSpec::test_set(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use floorplan::GridSpec;
    use hotgauge::PipelineConfig;

    #[test]
    fn split_is_workload_exclusive() {
        // Tiny configuration: 2 VF points, short runs, coarse grid.
        let mut cfg = PipelineConfig::paper();
        cfg.grid = GridSpec::new(8, 6).unwrap();
        let p = cfg.build().unwrap();
        let features =
            FeatureSet::from_names(&["temperature_sensor_data", "ipc", "frequency_ghz"]).unwrap();
        let vf = [(GigaHertz::new(4.0), Volts::new(0.98))];
        let spec = DatasetSpec {
            steps: 20,
            horizon: 12,
            sensor_idx: 3,
            label_cap: Some(2.0),
        };
        let tt = build_train_test(&p, &features, &vf, &spec).unwrap();
        assert_eq!(tt.train_workloads.len(), 20);
        assert_eq!(tt.test_workloads.len(), 7);
        assert_eq!(tt.train.distinct_groups().len(), 20);
        assert_eq!(tt.test.distinct_groups().len(), 7);
        // 1 vf x 8 usable steps per workload.
        assert_eq!(tt.train.len(), 20 * 8);
        assert_eq!(tt.test.len(), 7 * 8);
    }
}
