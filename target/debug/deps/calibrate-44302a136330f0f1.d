/root/repo/target/debug/deps/calibrate-44302a136330f0f1.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-44302a136330f0f1: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
