/root/repo/target/debug/deps/boreas_bench-93ea3f088b8d7487.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libboreas_bench-93ea3f088b8d7487.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libboreas_bench-93ea3f088b8d7487.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
