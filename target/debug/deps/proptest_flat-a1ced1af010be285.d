/root/repo/target/debug/deps/proptest_flat-a1ced1af010be285.d: crates/gbt/tests/proptest_flat.rs

/root/repo/target/debug/deps/proptest_flat-a1ced1af010be285: crates/gbt/tests/proptest_flat.rs

crates/gbt/tests/proptest_flat.rs:
