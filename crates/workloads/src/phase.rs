//! The deterministic phase engine: evolves a workload's activity over
//! time at the 80 µs step granularity.
//!
//! Three timescales are modelled, mirroring the structure HotGauge
//! observed in real SPEC traces:
//!
//! 1. **slow phases** (hundreds of µs to ms): program phases with
//!    different activity/locality, a square-ish alternation with jittered
//!    transitions;
//! 2. **fast bursts** (tens to hundreds of µs): the power spikes that make
//!    *advanced* hotspots fast and hard to catch with delayed sensors —
//!    amplitude and period come from [`WorkloadSpec::spikiness`] and
//!    [`WorkloadSpec::spike_period_us`];
//! 3. **noise**: small Gaussian jitter on every sample.
//!
//! The burst waveform is normalised so its *time-average* is 1: spiky
//! workloads do not consume more average power than smooth ones, they
//! concentrate the same energy in shorter windows — exactly the property
//! that differentiates gromacs from gamess in the paper.

use crate::spec::WorkloadSpec;
use common::rng::SplitMix64;
use common::time::STEP_MICROS;
use serde::{Deserialize, Serialize};

/// Instantaneous activity multipliers for one 80 µs step.
///
/// All fields are dimensionless multipliers with long-run mean ≈ 1.0;
/// the perf and power models scale them by workload- and unit-specific
/// constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Activity {
    /// Overall switching-activity envelope including bursts.
    pub core: f64,
    /// Envelope without the burst component (slow phase × noise only).
    pub sustained: f64,
    /// Burst multiplier in effect this step (1.0 = off-burst baseline).
    pub burst: f64,
    /// IPC modulation: phases with higher activity commit more.
    pub ipc_scale: f64,
    /// Cache-miss modulation: low-locality phases boost miss rates.
    pub mem_boost: f64,
}

/// Deterministic per-workload activity generator.
///
/// Two engines created with the same spec and seed produce identical
/// streams.
///
/// # Examples
///
/// ```
/// use boreas_workloads::{PhaseEngine, WorkloadSpec};
///
/// let spec = WorkloadSpec::by_name("bzip2")?;
/// let mut a = PhaseEngine::new(&spec, 7);
/// let mut b = PhaseEngine::new(&spec, 7);
/// assert_eq!(a.step(), b.step());
/// # Ok::<(), common::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct PhaseEngine {
    // Static configuration distilled from the spec.
    phase_period_us: f64,
    phase_depth: f64,
    spike_period_us: f64,
    spike_duty: f64,
    burst_hi: f64,
    burst_lo: f64,
    // Dynamic state.
    now_us: f64,
    rng: SplitMix64,
    phase_high: bool,
    next_phase_flip_us: f64,
    spike_offset_us: f64,
}

impl PhaseEngine {
    /// Creates an engine for `spec` with a deterministic `seed`.
    pub fn new(spec: &WorkloadSpec, seed: u64) -> Self {
        // Mix the workload identity into the seed so different workloads
        // sharing a root seed still get independent streams.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in spec.name.bytes() {
            hash = (hash ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        let mut rng = SplitMix64::new(seed ^ hash);

        // Burst waveform: during a burst the envelope rises to `hi`;
        // between bursts it drops to `lo`, chosen so the duty-weighted
        // mean is exactly 1 and never negative.
        let duty = spec.spike_duty.clamp(0.05, 0.95);
        let amp = (1.2 * spec.spikiness).min(1.2);
        let hi = 1.0 + amp;
        let lo = ((1.0 - duty * hi) / (1.0 - duty)).max(0.05);
        let spike_offset_us = rng.uniform(0.0, spec.spike_period_us.max(1.0));
        let first_flip = spec.phase_period_us.max(1.0) * rng.uniform(0.6, 1.4);

        Self {
            phase_period_us: spec.phase_period_us.max(1.0),
            phase_depth: spec.phase_depth.clamp(0.0, 1.0),
            spike_period_us: spec.spike_period_us.max(1.0),
            spike_duty: duty,
            burst_hi: hi,
            burst_lo: lo,
            now_us: 0.0,
            rng,
            phase_high: true,
            next_phase_flip_us: first_flip,
            spike_offset_us,
        }
    }

    /// Current simulated time in µs (start of the next step).
    pub fn now_us(&self) -> f64 {
        self.now_us
    }

    /// Produces the activity for the next 80 µs step and advances time.
    pub fn step(&mut self) -> Activity {
        // Slow phase alternation with jittered flips.
        while self.now_us >= self.next_phase_flip_us {
            self.phase_high = !self.phase_high;
            let jitter = self.rng.uniform(0.6, 1.4);
            self.next_phase_flip_us += self.phase_period_us * jitter;
        }
        let phase_level = if self.phase_high {
            1.0 + self.phase_depth / 2.0
        } else {
            1.0 - self.phase_depth / 2.0
        };

        // Fast burst: a square wave in workload-local time, integrated
        // exactly over the step window so sub-step bursts contribute their
        // true energy instead of aliasing against the 80 µs sampling.
        let s0 = self.now_us + self.spike_offset_us;
        let frac = burst_overlap_fraction(
            s0,
            STEP_MICROS as f64,
            self.spike_period_us,
            self.spike_duty,
        );
        let burst = self.burst_lo + (self.burst_hi - self.burst_lo) * frac;

        // Multiplicative Gaussian jitter, clamped to stay positive.
        let noise = (1.0 + self.rng.normal(0.0, 0.02)).max(0.2);

        let sustained = phase_level * noise;
        let core = (sustained * burst).max(0.0);

        // Active phases commit more; low phases are often stall-ier and
        // (mildly) less cache friendly.
        let ipc_scale = (0.55 + 0.45 * phase_level) * noise;
        let mem_boost = 1.0 + 0.6 * (1.0 - phase_level).max(0.0) + 0.15 * (burst - 1.0).max(0.0);

        self.now_us += STEP_MICROS as f64;
        Activity {
            core,
            sustained,
            burst,
            ipc_scale,
            mem_boost,
        }
    }

    /// Convenience: produces the next `n` steps.
    pub fn take_steps(&mut self, n: usize) -> Vec<Activity> {
        (0..n).map(|_| self.step()).collect()
    }
}

/// Fraction of the window `[s0, s0 + len)` covered by the periodic burst
/// windows `[k·period, k·period + duty·period)`.
fn burst_overlap_fraction(s0: f64, len: f64, period: f64, duty: f64) -> f64 {
    debug_assert!(period > 0.0 && len > 0.0);
    let on = duty * period;
    // Integral of the indicator from 0 to t.
    let cum = |t: f64| {
        let full = (t / period).floor();
        let rem = t - full * period;
        full * on + rem.min(on)
    };
    ((cum(s0 + len) - cum(s0)) / len).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;

    fn engine(name: &str, seed: u64) -> PhaseEngine {
        PhaseEngine::new(&WorkloadSpec::by_name(name).unwrap(), seed)
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = engine("gromacs", 3).take_steps(500);
        let b = engine("gromacs", 3).take_steps(500);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = engine("gromacs", 3).take_steps(100);
        let b = engine("gromacs", 4).take_steps(100);
        assert_ne!(a, b);
    }

    #[test]
    fn different_workloads_differ_under_same_seed() {
        let a = engine("gromacs", 3).take_steps(100);
        let b = engine("gamess", 3).take_steps(100);
        assert_ne!(a, b);
    }

    #[test]
    fn long_run_mean_is_near_one() {
        for name in ["gromacs", "gamess", "mcf", "bzip2"] {
            let acts = engine(name, 11).take_steps(20_000);
            let mean = acts.iter().map(|a| a.core).sum::<f64>() / acts.len() as f64;
            assert!(
                (mean - 1.0).abs() < 0.12,
                "{name}: mean activity {mean} should be near 1"
            );
        }
    }

    #[test]
    fn spiky_workload_has_larger_peaks_than_smooth() {
        let spiky = engine("gromacs", 5).take_steps(5_000);
        let smooth = engine("gamess", 5).take_steps(5_000);
        let peak = |v: &[Activity]| v.iter().map(|a| a.core).fold(0.0_f64, f64::max);
        assert!(
            peak(&spiky) > peak(&smooth) + 0.2,
            "gromacs peak {} vs gamess peak {}",
            peak(&spiky),
            peak(&smooth)
        );
        // And larger step-to-step swings.
        let swing = |v: &[Activity]| {
            v.windows(2)
                .map(|w| (w[1].core - w[0].core).abs())
                .fold(0.0_f64, f64::max)
        };
        assert!(swing(&spiky) > swing(&smooth));
    }

    #[test]
    fn burst_overlap_fraction_is_exact() {
        // Window [0, 80) against bursts [0, 36) per 120 us period.
        let f = super::burst_overlap_fraction(0.0, 80.0, 120.0, 0.3);
        assert!((f - 36.0 / 80.0).abs() < 1e-12);
        // A window exactly covering one period sees exactly the duty.
        let f = super::burst_overlap_fraction(17.0, 120.0, 120.0, 0.3);
        assert!((f - 0.3).abs() < 1e-12);
        // A window inside the off region sees zero.
        let f = super::burst_overlap_fraction(40.0, 20.0, 120.0, 0.3);
        assert_eq!(f, 0.0);
    }

    #[test]
    fn burst_time_average_is_one() {
        for name in ["gromacs", "libquantum", "lbm", "gamess"] {
            let acts = engine(name, 13).take_steps(30_000);
            let mean = acts.iter().map(|a| a.burst).sum::<f64>() / acts.len() as f64;
            assert!((mean - 1.0).abs() < 0.05, "{name}: mean burst {mean}");
        }
    }

    #[test]
    fn activity_is_always_positive_and_finite() {
        let acts = engine("libquantum", 9).take_steps(10_000);
        for a in acts {
            assert!(a.core > 0.0 && a.core.is_finite());
            assert!(a.ipc_scale > 0.0 && a.ipc_scale.is_finite());
            assert!(a.mem_boost >= 1.0 && a.mem_boost.is_finite());
        }
    }

    #[test]
    fn phase_alternation_happens() {
        // bzip2 has a 1.1 ms phase period and 45% depth; over 50 ms both
        // levels must appear.
        let acts = engine("bzip2", 2).take_steps(625);
        let hi = acts.iter().filter(|a| a.sustained > 1.05).count();
        let lo = acts.iter().filter(|a| a.sustained < 0.95).count();
        assert!(hi > 10, "high phase never sampled ({hi})");
        assert!(lo > 10, "low phase never sampled ({lo})");
    }

    #[test]
    fn burst_waveform_alternates_for_spiky_workload() {
        // gromacs bursts must both rise above and fall below baseline.
        let acts = engine("gromacs", 1).take_steps(1_000);
        let above = acts.iter().filter(|a| a.burst > 1.05).count();
        let below = acts.iter().filter(|a| a.burst < 0.95).count();
        assert!(above > 50, "bursts never rise ({above})");
        assert!(below > 50, "bursts never fall ({below})");
    }

    #[test]
    fn time_advances_by_step() {
        let mut e = engine("gcc", 0);
        assert_eq!(e.now_us(), 0.0);
        e.step();
        assert_eq!(e.now_us(), 80.0);
        e.take_steps(9);
        assert_eq!(e.now_us(), 800.0);
    }
}
