//! The frequency controllers the paper evaluates.

use crate::critical::CriticalTemps;
use crate::vf::VfTable;
use common::units::GigaHertz;
use common::{Error, Result};
use gbt::GbtModel;
use hotgauge::StepRecord;
use serde::{Deserialize, Serialize};
use telemetry::FeatureSet;

/// What a controller chose to do at a decision boundary (diagnostics).
///
/// Serialisable: this is the canonical decision type shared by the
/// closed-loop runner, the flight recorder and the serving wire protocol
/// (`boreas-serve`) — no per-layer mirrors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Decision {
    /// Raise frequency one 250 MHz step.
    StepUp,
    /// Keep the current operating point.
    Hold,
    /// Lower frequency one 250 MHz step.
    StepDown,
}

/// Context handed to a controller at each 960 µs decision boundary.
///
/// Only *observable* state is exposed: the delayed sensor readings and
/// the interval's telemetry. True die temperatures and severities are
/// oracle knowledge and deliberately absent. Fields are private —
/// external frame sources (the online controller, `boreas-serve`) build
/// contexts through [`ControlContext::new`] and never reach into
/// pipeline internals.
#[derive(Debug)]
pub struct ControlContext<'a> {
    /// The legal operating points.
    vf: &'a VfTable,
    /// Index of the point used during the last interval.
    current_idx: usize,
    /// The 12 step records of the last interval (oldest first). Severity
    /// fields are present for *accounting*; controllers must not read
    /// them.
    recent: &'a [StepRecord],
    /// Which sensor the controller may read.
    sensor_idx: usize,
}

impl<'a> ControlContext<'a> {
    /// Builds a decision context from an interval's observed frames and
    /// the index of the operating point they ran at.
    ///
    /// `recent` is oldest-first; `sensor_idx` selects which sensor the
    /// controller may read ([`telemetry::MAX_SENSOR_BANK`] for the bank
    /// maximum).
    pub fn new(
        vf: &'a VfTable,
        current_idx: usize,
        recent: &'a [StepRecord],
        sensor_idx: usize,
    ) -> Self {
        debug_assert!(current_idx < vf.len(), "current index out of VF range");
        Self {
            vf,
            current_idx,
            recent,
            sensor_idx,
        }
    }

    /// The legal operating points.
    pub fn vf(&self) -> &'a VfTable {
        self.vf
    }

    /// Index of the point used during the last interval.
    pub fn current_idx(&self) -> usize {
        self.current_idx
    }

    /// The step records of the last interval (oldest first).
    pub fn recent(&self) -> &'a [StepRecord] {
        self.recent
    }

    /// Which sensor the controller may read by default.
    pub fn sensor_idx(&self) -> usize {
        self.sensor_idx
    }

    /// The newest step record of the interval.
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty (the runner never does this).
    pub fn last_record(&self) -> &StepRecord {
        self.recent.last().expect("non-empty interval")
    }

    /// The delayed sensor temperature visible to the controller, °C,
    /// read via the context's default selector (a single sensor, or the
    /// bank maximum for [`telemetry::MAX_SENSOR_BANK`]).
    pub fn sensor_temp(&self) -> f64 {
        self.sensor_temp_at(self.sensor_idx)
    }

    /// The delayed temperature of a specific sensor selector.
    pub fn sensor_temp_at(&self, sensor_idx: usize) -> f64 {
        telemetry::observed_temperature(self.last_record(), sensor_idx)
    }
}

/// What a controller can tell the flight recorder about its most recent
/// decision. Every field is optional: simple controllers report nothing,
/// Boreas reports its prediction and guardband, resilient wrappers add
/// their stage and telemetry quality. Serialisable so the serving wire
/// protocol and the flight recorder share it verbatim.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ControlDiagnostics {
    /// ML severity prediction backing the decision.
    pub predicted_severity: Option<f64>,
    /// Guardband in effect.
    pub guardband: Option<f64>,
    /// Resilience stage after the decision.
    pub stage: Option<crate::resilient::ControlStage>,
    /// Telemetry quality of the interval the decision was based on.
    pub quality: Option<f64>,
}

/// A voltage/frequency selection policy.
pub trait Controller {
    /// Display name (e.g. `"TH-05"`, `"ML05"`).
    fn name(&self) -> String;

    /// Chooses the VF index for the next interval.
    fn decide(&mut self, ctx: &ControlContext<'_>) -> usize;

    /// Clears any per-run state (none by default).
    fn reset(&mut self) {}

    /// Diagnostics for the most recent [`Controller::decide`] call
    /// (nothing by default). The runner reads this right after each
    /// decision to populate the flight recorder.
    fn diagnostics(&self) -> ControlDiagnostics {
        ControlDiagnostics::default()
    }
}

impl<T: Controller + ?Sized> Controller for &mut T {
    fn name(&self) -> String {
        (**self).name()
    }

    fn decide(&mut self, ctx: &ControlContext<'_>) -> usize {
        (**self).decide(ctx)
    }

    fn reset(&mut self) {
        (**self).reset();
    }

    fn diagnostics(&self) -> ControlDiagnostics {
        (**self).diagnostics()
    }
}

impl<T: Controller + ?Sized> Controller for Box<T> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn decide(&mut self, ctx: &ControlContext<'_>) -> usize {
        (**self).decide(ctx)
    }

    fn reset(&mut self) {
        (**self).reset();
    }

    fn diagnostics(&self) -> ControlDiagnostics {
        (**self).diagnostics()
    }
}

/// §III-C: the single globally safe VF limit (3.75 GHz); never moves.
#[derive(Debug, Clone)]
pub struct GlobalVfController {
    idx: usize,
}

impl GlobalVfController {
    /// Creates the controller pinned at `idx` (use the sweep table's
    /// [`crate::SweepTable::global_safe_index`]).
    pub fn new(idx: usize) -> Self {
        Self { idx }
    }
}

impl Controller for GlobalVfController {
    fn name(&self) -> String {
        "global".into()
    }

    fn decide(&mut self, _ctx: &ControlContext<'_>) -> usize {
        self.idx
    }
}

impl Controller for crate::oracle::OracleController {
    fn name(&self) -> String {
        crate::oracle::OracleController::name(self).to_string()
    }

    fn decide(&mut self, _ctx: &ControlContext<'_>) -> usize {
        self.vf_index()
    }
}

/// §III-D / Fig. 4: thermal-threshold control (TH-δ).
///
/// Thresholds are the global critical temperatures measured on the
/// training set; `relax_c` is the TH-05/TH-10 relaxation in degrees. The
/// controller steps down when the sensor reaches the current point's
/// threshold and steps up when the sensor is below the higher point's
/// threshold minus a hold-back margin.
#[derive(Debug, Clone)]
pub struct ThermalController {
    /// Per-VF-index temperature thresholds (°C); `None` = unconstrained.
    thresholds: Vec<Option<f64>>,
    /// Threshold relaxation in degrees (0, 5, 10 in the paper).
    relax_c: f64,
    /// Hysteresis margin for stepping up, °C.
    up_margin_c: f64,
    /// Which sensor the thresholds were calibrated against (the paper's
    /// thermal models read sensor 3, near the ALUs).
    sensor_idx: usize,
}

impl ThermalController {
    /// Builds TH-δ from measured critical temperatures.
    pub fn from_critical(crit: &CriticalTemps, relax_c: f64) -> Self {
        Self::from_thresholds(crit.global_thresholds(), relax_c)
    }

    /// Builds a controller from explicit thresholds, reading the paper's
    /// default sensor (tsens03).
    pub fn from_thresholds(thresholds: Vec<Option<f64>>, relax_c: f64) -> Self {
        Self {
            thresholds,
            relax_c,
            up_margin_c: 2.0,
            sensor_idx: telemetry::DEFAULT_SENSOR_INDEX,
        }
    }

    /// Overrides which sensor the controller reads.
    #[must_use]
    pub fn with_sensor(mut self, sensor_idx: usize) -> Self {
        self.sensor_idx = sensor_idx;
        self
    }

    fn threshold(&self, idx: usize) -> f64 {
        self.thresholds
            .get(idx)
            .copied()
            .flatten()
            .map_or(f64::INFINITY, |t| t + self.relax_c)
    }
}

impl Controller for ThermalController {
    fn name(&self) -> String {
        format!("TH-{:02.0}", self.relax_c)
    }

    fn decide(&mut self, ctx: &ControlContext<'_>) -> usize {
        let temp = ctx.sensor_temp_at(self.sensor_idx);
        let idx = ctx.current_idx();
        if temp >= self.threshold(idx) {
            return ctx.vf().step_down(idx);
        }
        let up = ctx.vf().step_up(idx);
        if up != idx && temp < self.threshold(up) - self.up_margin_c {
            return up;
        }
        idx
    }
}

/// §IV–V: Boreas — GBT severity prediction over hardware telemetry with a
/// prediction guardband (ML00/ML05/ML10).
///
/// At each decision the controller predicts the next interval's maximum
/// severity from the current feature vector. If the prediction exceeds
/// `1 − guardband` it steps down; otherwise it re-queries the model with
/// the features rescaled to one VF step higher and steps up when that
/// prediction is also below the threshold.
#[derive(Debug, Clone)]
pub struct BoreasController {
    model: GbtModel,
    /// The ensemble compiled to the flat SoA layout at construction; all
    /// per-decision queries run on this (bit-identical to the tree walk,
    /// see `gbt::FlatModel`).
    flat: gbt::FlatModel,
    features: FeatureSet,
    /// Severity guardband `g`: threshold is `1 − g` (0.0 / 0.05 / 0.10).
    guardband: f64,
    /// Temperature selector for `temperature_sensor_data` — Boreas
    /// consumes the full hardware telemetry, so it defaults to the bank
    /// maximum ([`telemetry::MAX_SENSOR_BANK`]), matching how the model
    /// was trained.
    sensor_idx: usize,
    /// Hold-candidate prediction of the most recent decision, for
    /// [`Controller::diagnostics`].
    last_prediction: Option<f64>,
}

impl BoreasController {
    /// Wraps a trained model, validating the guardband and the feature
    /// schema.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the guardband is outside
    /// `[0, 1)` or the model was trained on differently named features,
    /// and [`Error::ShapeMismatch`] when the model's arity disagrees with
    /// `features`.
    pub fn try_new(model: GbtModel, features: FeatureSet, guardband: f64) -> Result<Self> {
        if !(0.0..1.0).contains(&guardband) {
            return Err(Error::invalid_config(
                "guardband",
                format!("must be in [0, 1), got {guardband}"),
            ));
        }
        let names = features.names();
        if model.feature_names().len() != names.len() {
            return Err(Error::ShapeMismatch {
                what: "model/feature schema",
                expected: names.len(),
                actual: model.feature_names().len(),
            });
        }
        if model.feature_names() != names.as_slice() {
            return Err(Error::invalid_config(
                "features",
                format!(
                    "model/feature schema mismatch: model was trained on {:?}, controller given {:?}",
                    model.feature_names(),
                    names
                ),
            ));
        }
        Ok(Self {
            flat: model.flatten(),
            model,
            features,
            guardband,
            sensor_idx: telemetry::MAX_SENSOR_BANK,
            last_prediction: None,
        })
    }

    /// Overrides the temperature selector (must match training).
    #[must_use]
    pub fn with_sensor(mut self, sensor_idx: usize) -> Self {
        self.sensor_idx = sensor_idx;
        self
    }

    /// The severity threshold the controller enforces (`1 − g`).
    pub fn threshold(&self) -> f64 {
        1.0 - self.guardband
    }

    /// The underlying model.
    pub fn model(&self) -> &GbtModel {
        &self.model
    }

    /// Predicted severity for holding the current VF point.
    pub fn predict_hold(&self, ctx: &ControlContext<'_>) -> f64 {
        let vec = self.features.extract(ctx.last_record(), self.sensor_idx);
        self.flat.predict(&vec)
    }

    /// Predicted severity for moving one VF step up.
    pub fn predict_up(&self, ctx: &ControlContext<'_>) -> f64 {
        let rec = ctx.last_record();
        let vec = self.features.extract(rec, self.sensor_idx);
        let up = ctx.vf().step_up(ctx.current_idx());
        let target = ctx.vf().point(up);
        let what_if = self.features.rescale_to_vf(
            &vec,
            GigaHertz::new(rec.frequency.value()),
            target.frequency,
            target.voltage,
        );
        self.flat.predict(&what_if)
    }

    /// Predicted severities for the interval's decision candidates —
    /// `(hold, step-up)` — evaluated in one batched ensemble pass
    /// ([`gbt::FlatModel::predict_batch`]) on the compiled flat layout
    /// instead of two independent tree walks. Bit-identical to calling
    /// [`BoreasController::predict_hold`] and
    /// [`BoreasController::predict_up`] separately.
    pub fn predict_candidates(&self, ctx: &ControlContext<'_>) -> (f64, f64) {
        let rec = ctx.last_record();
        let hold = self.features.extract(rec, self.sensor_idx);
        let up = ctx.vf().step_up(ctx.current_idx());
        let target = ctx.vf().point(up);
        let what_if = self.features.rescale_to_vf(
            &hold,
            GigaHertz::new(rec.frequency.value()),
            target.frequency,
            target.voltage,
        );
        let preds = self.flat.predict_batch(&[hold, what_if]);
        (preds[0], preds[1])
    }
}

impl Controller for BoreasController {
    fn name(&self) -> String {
        format!("ML{:02.0}", self.guardband * 100.0)
    }

    fn decide(&mut self, ctx: &ControlContext<'_>) -> usize {
        let threshold = self.threshold();
        let idx = ctx.current_idx();
        let up = ctx.vf().step_up(idx);
        let (hold_pred, up_pred) = self.predict_candidates(ctx);
        self.last_prediction = Some(hold_pred);
        if hold_pred > threshold {
            return ctx.vf().step_down(idx);
        }
        if up != idx && up_pred <= threshold {
            return up;
        }
        idx
    }

    fn reset(&mut self) {
        self.last_prediction = None;
    }

    fn diagnostics(&self) -> ControlDiagnostics {
        ControlDiagnostics {
            predicted_severity: self.last_prediction,
            guardband: Some(self.guardband),
            stage: None,
            quality: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vf::VfTable;
    use common::units::Volts;
    use workloads::WorkloadSpec;

    /// Builds a real 12-step interval by running the pipeline briefly.
    fn make_interval(freq: f64, volt: f64) -> Vec<StepRecord> {
        let mut cfg = hotgauge::PipelineConfig::paper();
        cfg.grid = floorplan::GridSpec::new(8, 6).unwrap();
        let p = cfg.build().unwrap();
        let spec = WorkloadSpec::by_name("gcc").unwrap();
        let out = p
            .run_fixed(&spec, GigaHertz::new(freq), Volts::new(volt), 12)
            .unwrap();
        out.records
    }

    #[test]
    fn global_controller_never_moves() {
        let vf = VfTable::paper();
        let recent = make_interval(3.75, 0.925);
        let mut c = GlobalVfController::new(VfTable::BASELINE_INDEX);
        let ctx = ControlContext::new(&vf, VfTable::BASELINE_INDEX, &recent, 3);
        assert_eq!(c.decide(&ctx), VfTable::BASELINE_INDEX);
        assert_eq!(c.name(), "global");
    }

    #[test]
    fn thermal_controller_steps_down_when_hot() {
        let vf = VfTable::paper();
        let recent = make_interval(4.0, 0.98);
        // Threshold below any plausible sensor reading -> must step down.
        let mut c = ThermalController::from_thresholds(vec![Some(10.0); vf.len()], 0.0);
        let ctx = ControlContext::new(&vf, 8, &recent, 3);
        assert_eq!(c.decide(&ctx), 7);
        assert_eq!(c.name(), "TH-00");
    }

    #[test]
    fn thermal_controller_steps_up_when_cool() {
        let vf = VfTable::paper();
        let recent = make_interval(3.75, 0.925);
        let mut c = ThermalController::from_thresholds(vec![Some(1000.0); vf.len()], 0.0);
        let ctx = ControlContext::new(&vf, 7, &recent, 3);
        assert_eq!(c.decide(&ctx), 8);
    }

    #[test]
    fn thermal_relaxation_shifts_thresholds() {
        let a = ThermalController::from_thresholds(vec![Some(70.0)], 0.0);
        let b = ThermalController::from_thresholds(vec![Some(70.0)], 5.0);
        assert_eq!(a.threshold(0), 70.0);
        assert_eq!(b.threshold(0), 75.0);
        assert_eq!(b.name(), "TH-05");
        // Missing threshold = unconstrained.
        assert_eq!(a.threshold(5), f64::INFINITY);
    }

    #[test]
    fn thermal_top_of_table_holds() {
        let vf = VfTable::paper();
        let recent = make_interval(5.0, 1.4);
        let mut c = ThermalController::from_thresholds(vec![Some(1000.0); vf.len()], 0.0);
        let ctx = ControlContext::new(&vf, 12, &recent, 3);
        assert_eq!(c.decide(&ctx), 12, "cannot step above the table");
    }

    #[test]
    fn boreas_controller_guardband_logic() {
        // Train a trivial model that predicts severity = frequency / 5,
        // so 4.0 GHz -> 0.8, 4.25 -> 0.85, etc.
        let mut d = gbt::Dataset::new(vec!["frequency_ghz".to_string()]);
        for i in 0..200 {
            let f = 2.0 + 3.0 * (i as f64 / 200.0);
            d.push_row(&[f], f / 5.0, (i % 2) as u32).unwrap();
        }
        let model =
            gbt::GbtModel::train(&d, &gbt::GbtParams::default().with_estimators(60)).unwrap();
        let features = FeatureSet::from_names(&["frequency_ghz"]).unwrap();
        let vf = VfTable::paper();
        let recent = make_interval(4.0, 0.98);
        // current_idx 8 = 4.0 GHz
        let ctx = ControlContext::new(&vf, 8, &recent, 3);
        // Guardband 0: threshold 1.0 -> hold prediction 0.8 is fine, up
        // prediction 0.85 is fine -> step up.
        let mut ml00 = BoreasController::try_new(model.clone(), features.clone(), 0.0).unwrap();
        assert_eq!(ml00.decide(&ctx), 9);
        assert_eq!(ml00.name(), "ML00");
        // Guardband 0.18: threshold 0.82 -> hold 0.8 ok, up 0.85 > 0.82
        // -> hold.
        let mut mid = BoreasController::try_new(model.clone(), features.clone(), 0.18).unwrap();
        assert_eq!(mid.decide(&ctx), 8);
        // Guardband 0.25: threshold 0.75 < hold 0.8 -> step down.
        let mut tight = BoreasController::try_new(model, features, 0.25).unwrap();
        assert_eq!(tight.decide(&ctx), 7);
        assert_eq!(tight.name(), "ML25");
    }

    fn tiny_model() -> GbtModel {
        let mut d = gbt::Dataset::new(vec!["frequency_ghz".to_string()]);
        d.push_row(&[4.0], 0.5, 0).unwrap();
        d.push_row(&[4.5], 0.9, 1).unwrap();
        gbt::GbtModel::train(&d, &gbt::GbtParams::default().with_estimators(1)).unwrap()
    }

    #[test]
    fn batched_candidates_match_individual_predictions() {
        let mut d = gbt::Dataset::new(vec!["frequency_ghz".to_string()]);
        for i in 0..200 {
            let f = 2.0 + 3.0 * (i as f64 / 200.0);
            d.push_row(&[f], f / 5.0, (i % 2) as u32).unwrap();
        }
        let model =
            gbt::GbtModel::train(&d, &gbt::GbtParams::default().with_estimators(60)).unwrap();
        let features = FeatureSet::from_names(&["frequency_ghz"]).unwrap();
        let vf = VfTable::paper();
        let recent = make_interval(4.0, 0.98);
        let c = BoreasController::try_new(model, features, 0.05).unwrap();
        for current_idx in [0, 8, vf.len() - 1] {
            let ctx = ControlContext::new(&vf, current_idx, &recent, 3);
            let (hold, up) = c.predict_candidates(&ctx);
            assert_eq!(hold.to_bits(), c.predict_hold(&ctx).to_bits());
            assert_eq!(up.to_bits(), c.predict_up(&ctx).to_bits());
        }
    }

    #[test]
    fn try_new_rejects_invalid_inputs() {
        let features = FeatureSet::from_names(&["frequency_ghz"]).unwrap();
        // Out-of-range guardbands.
        for g in [-0.1, 1.0, 1.5, f64::NAN] {
            let err = BoreasController::try_new(tiny_model(), features.clone(), g).unwrap_err();
            assert!(
                matches!(
                    err,
                    Error::InvalidConfig {
                        what: "guardband",
                        ..
                    }
                ),
                "guardband {g}: unexpected error {err}"
            );
        }
        // Arity mismatch.
        let wide = FeatureSet::from_names(&["frequency_ghz", "voltage_v"]).unwrap();
        let err = BoreasController::try_new(tiny_model(), wide, 0.05).unwrap_err();
        assert!(
            matches!(
                err,
                Error::ShapeMismatch {
                    expected: 2,
                    actual: 1,
                    ..
                }
            ),
            "{err}"
        );
        // Same arity, different feature.
        let other = FeatureSet::from_names(&["voltage_v"]).unwrap();
        let err = BoreasController::try_new(tiny_model(), other, 0.05).unwrap_err();
        assert!(
            matches!(
                err,
                Error::InvalidConfig {
                    what: "features",
                    ..
                }
            ),
            "{err}"
        );
        // The happy path still works.
        assert!(BoreasController::try_new(tiny_model(), features, 0.05).is_ok());
    }
}
