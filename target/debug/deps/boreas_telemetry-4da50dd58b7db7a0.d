/root/repo/target/debug/deps/boreas_telemetry-4da50dd58b7db7a0.d: crates/telemetry/src/lib.rs crates/telemetry/src/dataset.rs crates/telemetry/src/features.rs crates/telemetry/src/quality.rs crates/telemetry/src/selection.rs crates/telemetry/src/split.rs

/root/repo/target/debug/deps/libboreas_telemetry-4da50dd58b7db7a0.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/dataset.rs crates/telemetry/src/features.rs crates/telemetry/src/quality.rs crates/telemetry/src/selection.rs crates/telemetry/src/split.rs

/root/repo/target/debug/deps/libboreas_telemetry-4da50dd58b7db7a0.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/dataset.rs crates/telemetry/src/features.rs crates/telemetry/src/quality.rs crates/telemetry/src/selection.rs crates/telemetry/src/split.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/dataset.rs:
crates/telemetry/src/features.rs:
crates/telemetry/src/quality.rs:
crates/telemetry/src/selection.rs:
crates/telemetry/src/split.rs:
