/root/repo/target/debug/deps/boreas_telemetry-60d40ede8d0ef4d1.d: crates/telemetry/src/lib.rs crates/telemetry/src/dataset.rs crates/telemetry/src/features.rs crates/telemetry/src/quality.rs crates/telemetry/src/selection.rs crates/telemetry/src/split.rs

/root/repo/target/debug/deps/libboreas_telemetry-60d40ede8d0ef4d1.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/dataset.rs crates/telemetry/src/features.rs crates/telemetry/src/quality.rs crates/telemetry/src/selection.rs crates/telemetry/src/split.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/dataset.rs:
crates/telemetry/src/features.rs:
crates/telemetry/src/quality.rs:
crates/telemetry/src/selection.rs:
crates/telemetry/src/split.rs:
