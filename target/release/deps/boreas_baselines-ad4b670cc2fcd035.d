/root/repo/target/release/deps/boreas_baselines-ad4b670cc2fcd035.d: crates/baselines/src/lib.rs crates/baselines/src/cochran_reda.rs crates/baselines/src/kmeans.rs crates/baselines/src/linreg.rs crates/baselines/src/pca.rs

/root/repo/target/release/deps/libboreas_baselines-ad4b670cc2fcd035.rlib: crates/baselines/src/lib.rs crates/baselines/src/cochran_reda.rs crates/baselines/src/kmeans.rs crates/baselines/src/linreg.rs crates/baselines/src/pca.rs

/root/repo/target/release/deps/libboreas_baselines-ad4b670cc2fcd035.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cochran_reda.rs crates/baselines/src/kmeans.rs crates/baselines/src/linreg.rs crates/baselines/src/pca.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cochran_reda.rs:
crates/baselines/src/kmeans.rs:
crates/baselines/src/linreg.rs:
crates/baselines/src/pca.rs:
