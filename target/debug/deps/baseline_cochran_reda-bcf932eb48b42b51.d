/root/repo/target/debug/deps/baseline_cochran_reda-bcf932eb48b42b51.d: crates/bench/src/bin/baseline_cochran_reda.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_cochran_reda-bcf932eb48b42b51.rmeta: crates/bench/src/bin/baseline_cochran_reda.rs Cargo.toml

crates/bench/src/bin/baseline_cochran_reda.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
