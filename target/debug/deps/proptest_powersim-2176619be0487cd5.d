/root/repo/target/debug/deps/proptest_powersim-2176619be0487cd5.d: crates/powersim/tests/proptest_powersim.rs

/root/repo/target/debug/deps/proptest_powersim-2176619be0487cd5: crates/powersim/tests/proptest_powersim.rs

crates/powersim/tests/proptest_powersim.rs:
