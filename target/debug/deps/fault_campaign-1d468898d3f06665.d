/root/repo/target/debug/deps/fault_campaign-1d468898d3f06665.d: crates/bench/src/bin/fault_campaign.rs

/root/repo/target/debug/deps/fault_campaign-1d468898d3f06665: crates/bench/src/bin/fault_campaign.rs

crates/bench/src/bin/fault_campaign.rs:
