//! Census of hotspot episodes across the workload suite: how many form,
//! how fast, and on which functional units — the HotGauge-style
//! characterisation that motivates the paper (§II-A: advanced hotspots
//! are fast, non-uniform and application dependent).
//!
//! Run with: `cargo run --release --example hotspot_census [freq_ghz]`

use boreas::prelude::*;
use hotgauge::{detect_events, summarize, HotspotClass};
use std::collections::BTreeMap;

fn main() -> Result<()> {
    let freq: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4.5);
    let pipeline = PipelineConfig::paper().build()?;
    let vf = VfTable::paper();
    let point = VfPoint::closest(GigaHertz::new(freq));
    let _ = &vf;

    println!(
        "hotspot census at {:.2} GHz, severity threshold 0.9, 12 ms per workload\n",
        point.frequency.value()
    );
    println!(
        "{:<12} {:>7} {:>9} {:>8} {:>10}  units",
        "workload", "events", "advanced", "steps", "longest"
    );
    let mut unit_totals: BTreeMap<String, usize> = BTreeMap::new();
    let mut total_advanced = 0usize;
    let mut total_events = 0usize;
    for spec in WorkloadSpec::by_severity_rank() {
        let out = pipeline.run_fixed(&spec, point.frequency, point.voltage, 150)?;
        let events = detect_events(&out.records, pipeline.floorplan(), 0.9);
        let s = summarize(&events);
        let mut units: BTreeMap<String, usize> = BTreeMap::new();
        for e in &events {
            let name = e
                .unit
                .map(|u| u.name().to_string())
                .unwrap_or_else(|| "-".into());
            *units.entry(name.clone()).or_insert(0) += 1;
            *unit_totals.entry(name).or_insert(0) += 1;
        }
        total_advanced += s.advanced;
        total_events += s.count;
        let unit_str = units
            .iter()
            .map(|(u, n)| format!("{u}x{n}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "{:<12} {:>7} {:>9} {:>8} {:>10}  {}",
            spec.name, s.count, s.advanced, s.total_steps, s.longest_steps, unit_str
        );
        // Sanity: every advanced event formed within ~1 ms.
        for e in &events {
            if e.class == HotspotClass::Advanced {
                assert!(e.peak_severity >= 0.9);
            }
        }
    }
    println!("\ntotals: {total_events} episodes, {total_advanced} advanced");
    println!("episodes per unit: {unit_totals:?}");
    println!(
        "\n(advanced hotspots — the fast ones — concentrate on the execution cluster; \
         this is the §II-A premise that motivates predictive mitigation)"
    );
    Ok(())
}
