/root/repo/target/release/deps/table4_feature_importance-0bb9435307ce7fac.d: crates/bench/src/bin/table4_feature_importance.rs

/root/repo/target/release/deps/table4_feature_importance-0bb9435307ce7fac: crates/bench/src/bin/table4_feature_importance.rs

crates/bench/src/bin/table4_feature_importance.rs:
