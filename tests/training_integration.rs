//! Cross-crate integration: telemetry extraction → GBT training →
//! generalisation and persistence.

use boreas::prelude::*;
use telemetry::build_dataset;

fn coarse_pipeline() -> Pipeline {
    let mut cfg = PipelineConfig::paper();
    cfg.grid = floorplan::GridSpec::new(16, 12).expect("valid grid");
    cfg.build().expect("config builds")
}

fn small_vf() -> Vec<(GigaHertz, Volts)> {
    vec![
        (GigaHertz::new(3.5), Volts::new(0.87)),
        (GigaHertz::new(4.25), Volts::new(1.065)),
        (GigaHertz::new(5.0), Volts::new(1.4)),
    ]
}

#[test]
fn model_generalises_to_unseen_workload() {
    let p = coarse_pipeline();
    let features = FeatureSet::full();
    let spec = DatasetSpec {
        steps: 80,
        ..DatasetSpec::default()
    };
    let train_ws: Vec<WorkloadSpec> = ["gcc", "povray", "mcf", "milc", "sjeng", "lbm"]
        .iter()
        .map(|n| WorkloadSpec::by_name(n).unwrap())
        .collect();
    let test_ws = vec![WorkloadSpec::by_name("gamess").unwrap()];
    let train = build_dataset(&p, &features, &train_ws, &small_vf(), &spec).unwrap();
    let test = build_dataset(&p, &features, &test_ws, &small_vf(), &spec).unwrap();
    let model = GbtModel::train(&train, &GbtParams::default().with_estimators(120)).unwrap();
    let mse = model.mse_on(&test);
    assert!(mse < 0.05, "unseen-workload MSE too high: {mse}");
    // Predictions correlate with the truth: high-label instances predict
    // higher than low-label instances on average.
    let preds = model.predict_dataset(&test);
    let mut hi = (0.0, 0);
    let mut lo = (0.0, 0);
    for (pred, &y) in preds.iter().zip(test.targets()) {
        if y > 0.8 {
            hi = (hi.0 + pred, hi.1 + 1);
        } else if y < 0.4 {
            lo = (lo.0 + pred, lo.1 + 1);
        }
    }
    assert!(hi.1 > 0 && lo.1 > 0, "need both regimes in the test set");
    assert!(
        hi.0 / hi.1 as f64 > lo.0 / lo.1 as f64 + 0.2,
        "predictions must separate hot from cold states"
    );
}

#[test]
fn leave_one_app_out_cv_runs_on_pipeline_data() {
    let p = coarse_pipeline();
    let features = FeatureSet::from_names(&[
        "temperature_sensor_data",
        "total_cycles",
        "cdb_fpu_accesses",
        "busy_cycles",
    ])
    .unwrap();
    let ws: Vec<WorkloadSpec> = ["gcc", "povray", "mcf"]
        .iter()
        .map(|n| WorkloadSpec::by_name(n).unwrap())
        .collect();
    let spec = DatasetSpec {
        steps: 50,
        ..DatasetSpec::default()
    };
    let data = build_dataset(&p, &features, &ws, &small_vf(), &spec).unwrap();
    let cv = gbt::leave_one_group_out(&data, &GbtParams::default().with_estimators(40)).unwrap();
    assert_eq!(cv.fold_mse.len(), 3);
    assert!(cv.mean_mse.is_finite());
}

#[test]
fn persisted_model_drives_the_controller_identically() {
    let p = coarse_pipeline();
    let vf = VfTable::paper();
    let train: Vec<WorkloadSpec> = ["gcc", "povray", "lbm"]
        .iter()
        .map(|n| WorkloadSpec::by_name(n).unwrap())
        .collect();
    let features =
        FeatureSet::from_names(&["temperature_sensor_data", "total_cycles", "voltage_v"]).unwrap();
    let cfg = TrainingConfig {
        steps: 50,
        params: GbtParams::default().with_estimators(30),
        ..TrainingConfig::default()
    };
    let model = TrainSpec::new(&p)
        .features(features.clone())
        .vf(vf)
        .workloads(&train)
        .config(cfg)
        .fit()
        .unwrap()
        .model;
    let json = model.to_json().unwrap();
    let restored = GbtModel::from_json(&json).unwrap();

    let mut run = RunSpec::new(&p).steps(96);
    let spec = WorkloadSpec::by_name("hmmer").unwrap();
    let mut a = BoreasController::try_new(model, features.clone(), 0.05).expect("schema matches");
    let mut b = BoreasController::try_new(restored, features, 0.05).expect("schema matches");
    let out_a = run.run(&spec, &mut a).unwrap();
    let out_b = run.run(&spec, &mut b).unwrap();
    assert_eq!(out_a.avg_frequency, out_b.avg_frequency);
    assert_eq!(out_a.incursions, out_b.incursions);
}

#[test]
fn feature_selection_runs_on_pipeline_data() {
    let p = coarse_pipeline();
    let features = FeatureSet::full();
    let ws: Vec<WorkloadSpec> = ["gcc", "povray", "mcf", "sjeng"]
        .iter()
        .map(|n| WorkloadSpec::by_name(n).unwrap())
        .collect();
    let spec = DatasetSpec {
        steps: 50,
        ..DatasetSpec::default()
    };
    let data = build_dataset(&p, &features, &ws, &small_vf(), &spec).unwrap();
    let params = GbtParams::default().with_estimators(40);
    let top = telemetry::select_top_features(&data, &params, 10).unwrap();
    assert_eq!(top.len(), 10);
    let curve = telemetry::selection_curve(&data, None, &params, &[5, 10, 78]).unwrap();
    assert!(curve[2].gain_share > 0.999);
    assert!(curve[1].gain_share >= curve[0].gain_share);
}
