//! Static workload descriptions: the 27 SPEC CPU2006-like profiles.

use common::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Broad behavioural class of a workload; steers which functional units
/// receive the switching activity (and therefore where hotspots form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Integer compute-bound (ALU/MUL heavy): bzip2, hmmer, h264ref, …
    IntCompute,
    /// Floating-point compute-bound (FPU heavy): gamess, povray, gromacs, …
    FpCompute,
    /// Memory-bound (LSU/DCache/L2 heavy): mcf, lbm, libquantum, …
    MemoryBound,
    /// No single dominant behaviour.
    Mixed,
}

/// Committed-instruction mix; class fractions sum to 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstructionMix {
    /// Simple integer ALU operations.
    pub int_alu: f64,
    /// Integer multiply/divide.
    pub int_mul: f64,
    /// Floating-point / SIMD operations.
    pub fp: f64,
    /// Loads.
    pub load: f64,
    /// Stores.
    pub store: f64,
    /// Branches.
    pub branch: f64,
}

impl InstructionMix {
    /// Creates a mix, normalising the fractions to sum to exactly 1.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is negative or all are zero.
    pub fn new(int_alu: f64, int_mul: f64, fp: f64, load: f64, store: f64, branch: f64) -> Self {
        let parts = [int_alu, int_mul, fp, load, store, branch];
        assert!(
            parts.iter().all(|&p| p >= 0.0),
            "mix fractions must be non-negative"
        );
        let total: f64 = parts.iter().sum();
        assert!(total > 0.0, "mix cannot be all zero");
        Self {
            int_alu: int_alu / total,
            int_mul: int_mul / total,
            fp: fp / total,
            load: load / total,
            store: store / total,
            branch: branch / total,
        }
    }

    /// Sum of the fractions (1.0 up to rounding).
    pub fn total(&self) -> f64 {
        self.int_alu + self.int_mul + self.fp + self.load + self.store + self.branch
    }
}

/// Whether a workload belongs to the paper's training or test set
/// (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SetKind {
    /// One of the 20 training workloads.
    Train,
    /// One of the 7 unseen test workloads.
    Test,
}

/// Full static description of one synthetic workload.
///
/// `heat` is the calibrated thermal-intensity scalar: the suite-wide power
/// calibration in `powersim` maps `heat = 1.0` to "peak severity reaches
/// 1.0 just above 3.75 GHz", which pins the global safe frequency of
/// Fig. 2. `severity_rank` is the workload's position (ascending) in the
/// paper's peak-severity sort; every fourth rank is a test workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// SPEC-style benchmark name (e.g. `"bzip2"`).
    pub name: String,
    /// Train/test membership per Table III.
    pub set: SetKind,
    /// Behavioural class.
    pub class: WorkloadClass,
    /// Committed-instruction mix.
    pub mix: InstructionMix,
    /// Baseline IPC at 4.0 GHz when not memory-limited.
    pub base_ipc: f64,
    /// 0 = fully core-bound, 1 = fully memory-bound: controls how IPC
    /// degrades as frequency rises (memory latency is fixed in ns).
    pub mem_sensitivity: f64,
    /// L1I misses per kilo-instruction.
    pub l1i_mpki: f64,
    /// L1D misses per kilo-instruction.
    pub l1d_mpki: f64,
    /// L2 misses per kilo-instruction.
    pub l2_mpki: f64,
    /// ITLB misses per kilo-instruction.
    pub itlb_mpki: f64,
    /// DTLB misses per kilo-instruction.
    pub dtlb_mpki: f64,
    /// Branch mispredictions per kilo-instruction.
    pub branch_mpki: f64,
    /// Calibrated thermal-intensity scalar (see type docs).
    pub heat: f64,
    /// Fraction of power delivered in fast bursts (0 = steady).
    pub spikiness: f64,
    /// Period of the fast power bursts, µs.
    pub spike_period_us: f64,
    /// Fraction of each spike period spent in the burst.
    pub spike_duty: f64,
    /// Period of the slow phase alternation, µs.
    pub phase_period_us: f64,
    /// Depth of the slow modulation (0 = flat, 1 = full swing).
    pub phase_depth: f64,
    /// Position in the ascending peak-severity sort of Fig. 2 (0 = coolest).
    pub severity_rank: usize,
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:?}, rank {})",
            self.name, self.set, self.severity_rank
        )
    }
}

impl WorkloadSpec {
    /// Looks a workload up by name in [`ALL_WORKLOADS`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] for unknown names.
    ///
    /// # Examples
    ///
    /// ```
    /// use boreas_workloads::WorkloadSpec;
    ///
    /// let w = WorkloadSpec::by_name("bzip2")?;
    /// assert_eq!(w.name, "bzip2");
    /// # Ok::<(), common::Error>(())
    /// ```
    pub fn by_name(name: &str) -> Result<WorkloadSpec> {
        ALL_WORKLOADS
            .iter()
            .find(|w| w.name == name)
            .cloned()
            .ok_or_else(|| Error::not_found("workload", name))
    }

    /// All training workloads (20), in suite order.
    pub fn train_set() -> Vec<WorkloadSpec> {
        ALL_WORKLOADS
            .iter()
            .filter(|w| w.set == SetKind::Train)
            .cloned()
            .collect()
    }

    /// All test workloads (7), in suite order.
    pub fn test_set() -> Vec<WorkloadSpec> {
        ALL_WORKLOADS
            .iter()
            .filter(|w| w.set == SetKind::Test)
            .cloned()
            .collect()
    }

    /// All 27 workloads sorted by ascending `severity_rank`, the order of
    /// the paper's Fig. 2 tabulation.
    pub fn by_severity_rank() -> Vec<WorkloadSpec> {
        let mut all: Vec<WorkloadSpec> = ALL_WORKLOADS.to_vec();
        all.sort_by_key(|w| w.severity_rank);
        all
    }
}

macro_rules! workload {
    (
        $name:literal, $set:ident, $class:ident, rank = $rank:expr, heat = $heat:expr,
        spike = ($spk:expr, $spk_period:expr, $spk_duty:expr),
        phase = ($ph_period:expr, $ph_depth:expr),
        ipc = $ipc:expr, mem = $mem:expr,
        mix = ($alu:expr, $mul:expr, $fp:expr, $ld:expr, $st:expr, $br:expr),
        mpki = ($l1i:expr, $l1d:expr, $l2:expr, $itlb:expr, $dtlb:expr, $brm:expr)
    ) => {
        WorkloadSpec {
            name: String::from($name),
            set: SetKind::$set,
            class: WorkloadClass::$class,
            mix: InstructionMix::new($alu, $mul, $fp, $ld, $st, $br),
            base_ipc: $ipc,
            mem_sensitivity: $mem,
            l1i_mpki: $l1i,
            l1d_mpki: $l1d,
            l2_mpki: $l2,
            itlb_mpki: $itlb,
            dtlb_mpki: $dtlb,
            branch_mpki: $brm,
            heat: $heat,
            spikiness: $spk,
            spike_period_us: $spk_period,
            spike_duty: $spk_duty,
            phase_period_us: $ph_period,
            phase_depth: $ph_depth,
            severity_rank: $rank,
        }
    };
}

/// Builds the full 27-workload suite.
///
/// The table is ordered by `severity_rank`; the membership (Train/Test)
/// matches Table III exactly, and the ranks place every test workload at
/// positions 0, 4, 8, 12, 16, 20 and 24 of the ascending severity sort —
/// the paper's "every fourth workload" split.
fn build_suite() -> Vec<WorkloadSpec> {
    vec![
        workload!(
            "cactusADM",
            Test,
            FpCompute,
            rank = 4,
            heat = 1.201,
            spike = (0.15, 400.0, 0.5),
            phase = (3000.0, 0.15),
            ipc = 1.1,
            mem = 0.45,
            mix = (0.18, 0.02, 0.42, 0.24, 0.08, 0.06),
            mpki = (0.2, 12.0, 4.5, 0.01, 1.2, 1.0)
        ),
        workload!(
            "sjeng",
            Train,
            IntCompute,
            rank = 21,
            heat = 2.4034,
            spike = (0.08, 600.0, 0.5),
            phase = (2500.0, 0.10),
            ipc = 1.3,
            mem = 0.15,
            mix = (0.42, 0.02, 0.01, 0.24, 0.10, 0.21),
            mpki = (0.5, 2.5, 0.4, 0.05, 0.6, 9.0)
        ),
        workload!(
            "gobmk",
            Train,
            IntCompute,
            rank = 5,
            heat = 1.6984,
            spike = (0.12, 500.0, 0.45),
            phase = (2000.0, 0.20),
            ipc = 1.2,
            mem = 0.2,
            mix = (0.40, 0.02, 0.02, 0.26, 0.11, 0.19),
            mpki = (2.2, 3.0, 0.6, 0.2, 0.9, 10.5)
        ),
        workload!(
            "tonto",
            Train,
            FpCompute,
            rank = 6,
            heat = 0.8583,
            spike = (0.2, 350.0, 0.45),
            phase = (2200.0, 0.25),
            ipc = 1.6,
            mem = 0.2,
            mix = (0.20, 0.03, 0.38, 0.24, 0.09, 0.06),
            mpki = (1.1, 3.2, 0.7, 0.08, 0.7, 2.4)
        ),
        workload!(
            "omnetpp",
            Test,
            MemoryBound,
            rank = 0,
            heat = 1.894,
            spike = (0.25, 300.0, 0.4),
            phase = (1800.0, 0.30),
            ipc = 0.7,
            mem = 0.7,
            mix = (0.33, 0.01, 0.03, 0.30, 0.13, 0.20),
            mpki = (1.0, 22.0, 9.0, 0.3, 4.5, 6.0)
        ),
        workload!(
            "namd",
            Train,
            FpCompute,
            rank = 10,
            heat = 0.8407,
            spike = (0.15, 450.0, 0.55),
            phase = (2600.0, 0.12),
            ipc = 1.9,
            mem = 0.12,
            mix = (0.16, 0.02, 0.48, 0.22, 0.07, 0.05),
            mpki = (0.1, 1.8, 0.3, 0.01, 0.3, 1.1)
        ),
        workload!(
            "perlbench",
            Train,
            IntCompute,
            rank = 13,
            heat = 1.4893,
            spike = (0.2, 380.0, 0.4),
            phase = (1500.0, 0.28),
            ipc = 1.7,
            mem = 0.25,
            mix = (0.37, 0.02, 0.01, 0.27, 0.13, 0.20),
            mpki = (3.0, 4.5, 0.8, 0.5, 1.5, 5.5)
        ),
        workload!(
            "astar",
            Train,
            MemoryBound,
            rank = 3,
            heat = 1.9878,
            spike = (0.22, 320.0, 0.45),
            phase = (1700.0, 0.30),
            ipc = 0.9,
            mem = 0.6,
            mix = (0.36, 0.01, 0.02, 0.31, 0.10, 0.20),
            mpki = (0.3, 15.0, 5.0, 0.1, 2.8, 8.0)
        ),
        workload!(
            "GemsFDTD",
            Test,
            FpCompute,
            rank = 8,
            heat = 1.5553,
            spike = (0.3, 280.0, 0.4),
            phase = (2100.0, 0.25),
            ipc = 1.0,
            mem = 0.55,
            mix = (0.15, 0.02, 0.45, 0.26, 0.08, 0.04),
            mpki = (0.4, 18.0, 7.5, 0.05, 2.2, 0.9)
        ),
        workload!(
            "gcc",
            Train,
            IntCompute,
            rank = 17,
            heat = 1.9958,
            spike = (0.35, 250.0, 0.35),
            phase = (1200.0, 0.40),
            ipc = 1.4,
            mem = 0.35,
            mix = (0.38, 0.02, 0.01, 0.27, 0.14, 0.18),
            mpki = (4.5, 8.0, 2.2, 0.8, 2.0, 6.5)
        ),
        workload!(
            "sphinx3",
            Train,
            FpCompute,
            rank = 15,
            heat = 1.5408,
            spike = (0.25, 300.0, 0.45),
            phase = (1600.0, 0.30),
            ipc = 1.5,
            mem = 0.4,
            mix = (0.22, 0.02, 0.35, 0.27, 0.06, 0.08),
            mpki = (0.6, 9.5, 3.0, 0.05, 1.0, 3.5)
        ),
        workload!(
            "mcf",
            Train,
            MemoryBound,
            rank = 1,
            heat = 3.2133,
            spike = (0.2, 340.0, 0.5),
            phase = (2400.0, 0.20),
            ipc = 0.35,
            mem = 0.9,
            mix = (0.34, 0.01, 0.01, 0.34, 0.11, 0.19),
            mpki = (0.1, 55.0, 28.0, 0.05, 9.0, 9.5)
        ),
        workload!(
            "h264ref",
            Test,
            IntCompute,
            rank = 16,
            heat = 1.5701,
            spike = (0.3, 260.0, 0.5),
            phase = (1400.0, 0.30),
            ipc = 1.9,
            mem = 0.18,
            mix = (0.40, 0.05, 0.06, 0.28, 0.12, 0.09),
            mpki = (1.2, 3.8, 0.6, 0.1, 1.1, 2.8)
        ),
        workload!(
            "wrf",
            Train,
            FpCompute,
            rank = 18,
            heat = 1.3717,
            spike = (0.28, 290.0, 0.45),
            phase = (1900.0, 0.28),
            ipc = 1.4,
            mem = 0.35,
            mix = (0.18, 0.02, 0.44, 0.24, 0.07, 0.05),
            mpki = (1.8, 7.0, 2.4, 0.15, 1.3, 2.0)
        ),
        workload!(
            "bwaves",
            Train,
            FpCompute,
            rank = 14,
            heat = 1.3372,
            spike = (0.25, 310.0, 0.5),
            phase = (2000.0, 0.22),
            ipc = 1.2,
            mem = 0.5,
            mix = (0.14, 0.02, 0.48, 0.25, 0.07, 0.04),
            mpki = (0.1, 14.0, 6.0, 0.02, 1.6, 0.7)
        ),
        workload!(
            "soplex",
            Train,
            MemoryBound,
            rank = 7,
            heat = 2.0482,
            spike = (0.3, 270.0, 0.4),
            phase = (1500.0, 0.35),
            ipc = 0.8,
            mem = 0.65,
            mix = (0.25, 0.02, 0.25, 0.29, 0.08, 0.11),
            mpki = (0.5, 20.0, 8.5, 0.1, 3.2, 4.2)
        ),
        workload!(
            "bzip2",
            Test,
            IntCompute,
            rank = 12,
            heat = 1.5497,
            spike = (0.45, 220.0, 0.45),
            phase = (1100.0, 0.45),
            ipc = 1.6,
            mem = 0.3,
            mix = (0.43, 0.02, 0.01, 0.27, 0.13, 0.14),
            mpki = (0.2, 6.5, 1.8, 0.02, 1.4, 7.5)
        ),
        workload!(
            "calculix",
            Train,
            FpCompute,
            rank = 23,
            heat = 1.0659,
            spike = (0.3, 250.0, 0.5),
            phase = (1800.0, 0.25),
            ipc = 1.8,
            mem = 0.15,
            mix = (0.17, 0.03, 0.47, 0.22, 0.07, 0.04),
            mpki = (0.4, 2.6, 0.5, 0.03, 0.5, 1.5)
        ),
        workload!(
            "libquantum",
            Train,
            MemoryBound,
            rank = 2,
            heat = 2.2166,
            spike = (0.7, 140.0, 0.35),
            phase = (900.0, 0.40),
            ipc = 0.6,
            mem = 0.75,
            mix = (0.37, 0.01, 0.02, 0.29, 0.14, 0.17),
            mpki = (0.05, 32.0, 16.0, 0.01, 0.4, 1.2)
        ),
        workload!(
            "leslie3d",
            Train,
            FpCompute,
            rank = 19,
            heat = 1.4712,
            spike = (0.3, 260.0, 0.5),
            phase = (1700.0, 0.28),
            ipc = 1.3,
            mem = 0.45,
            mix = (0.15, 0.02, 0.47, 0.25, 0.07, 0.04),
            mpki = (0.2, 12.5, 5.2, 0.02, 1.5, 0.8)
        ),
        workload!(
            "hmmer",
            Test,
            IntCompute,
            rank = 20,
            heat = 1.4106,
            spike = (0.1, 700.0, 0.6),
            phase = (3200.0, 0.08),
            ipc = 2.2,
            mem = 0.08,
            mix = (0.46, 0.03, 0.02, 0.29, 0.12, 0.08),
            mpki = (0.05, 1.2, 0.2, 0.01, 0.2, 1.0)
        ),
        workload!(
            "milc",
            Train,
            FpCompute,
            rank = 11,
            heat = 1.4862,
            spike = (0.35, 230.0, 0.45),
            phase = (1300.0, 0.32),
            ipc = 1.0,
            mem = 0.55,
            mix = (0.14, 0.02, 0.49, 0.25, 0.07, 0.03),
            mpki = (0.1, 17.0, 8.0, 0.02, 2.5, 0.6)
        ),
        workload!(
            "zeusmp",
            Train,
            FpCompute,
            rank = 22,
            heat = 1.2565,
            spike = (0.3, 240.0, 0.5),
            phase = (1600.0, 0.25),
            ipc = 1.5,
            mem = 0.3,
            mix = (0.16, 0.02, 0.46, 0.24, 0.08, 0.04),
            mpki = (0.3, 7.8, 2.8, 0.05, 1.2, 1.4)
        ),
        workload!(
            "povray",
            Train,
            FpCompute,
            rank = 25,
            heat = 1.3874,
            spike = (0.3, 210.0, 0.5),
            phase = (1200.0, 0.30),
            ipc = 1.9,
            mem = 0.05,
            mix = (0.24, 0.03, 0.38, 0.22, 0.06, 0.07),
            mpki = (1.0, 1.5, 0.1, 0.1, 0.4, 3.8)
        ),
        workload!(
            "gamess",
            Test,
            FpCompute,
            rank = 24,
            heat = 1.0423,
            spike = (0.12, 800.0, 0.6),
            phase = (3500.0, 0.10),
            ipc = 2.0,
            mem = 0.06,
            mix = (0.19, 0.03, 0.45, 0.22, 0.06, 0.05),
            mpki = (0.8, 1.0, 0.1, 0.05, 0.3, 1.6)
        ),
        workload!(
            "lbm",
            Train,
            MemoryBound,
            rank = 9,
            heat = 2.668,
            spike = (0.5, 180.0, 0.4),
            phase = (1000.0, 0.35),
            ipc = 0.55,
            mem = 0.8,
            mix = (0.13, 0.01, 0.42, 0.28, 0.13, 0.03),
            mpki = (0.02, 38.0, 21.0, 0.01, 3.5, 0.4)
        ),
        workload!(
            "gromacs",
            Train,
            FpCompute,
            rank = 26,
            heat = 1.3663,
            spike = (0.9, 120.0, 0.3),
            phase = (800.0, 0.45),
            ipc = 1.5,
            mem = 0.2,
            mix = (0.20, 0.03, 0.44, 0.22, 0.07, 0.04),
            mpki = (0.5, 4.2, 0.9, 0.05, 0.8, 2.2)
        ),
    ]
}

/// The full 27-workload suite, in ascending severity-rank order.
///
/// Lazily built on first access and cached for the process lifetime.
pub static ALL_WORKLOADS: std::sync::LazyLock<Vec<WorkloadSpec>> =
    std::sync::LazyLock::new(build_suite);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_27_workloads_with_unique_names_and_ranks() {
        assert_eq!(ALL_WORKLOADS.len(), 27);
        let mut names: Vec<_> = ALL_WORKLOADS.iter().map(|w| w.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 27);
        let mut ranks: Vec<_> = ALL_WORKLOADS.iter().map(|w| w.severity_rank).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (0..27).collect::<Vec<_>>());
    }

    #[test]
    fn split_matches_table_iii() {
        let train: Vec<_> = WorkloadSpec::train_set()
            .iter()
            .map(|w| w.name.clone())
            .collect();
        let test: Vec<_> = WorkloadSpec::test_set()
            .iter()
            .map(|w| w.name.clone())
            .collect();
        assert_eq!(train.len(), 20);
        assert_eq!(test.len(), 7);
        for name in [
            "milc",
            "bwaves",
            "soplex",
            "gobmk",
            "sjeng",
            "leslie3d",
            "gcc",
            "calculix",
            "perlbench",
            "astar",
            "tonto",
            "zeusmp",
            "wrf",
            "lbm",
            "mcf",
            "sphinx3",
            "povray",
            "libquantum",
            "namd",
            "gromacs",
        ] {
            assert!(train.iter().any(|n| n == name), "train missing {name}");
        }
        for name in [
            "cactusADM",
            "omnetpp",
            "GemsFDTD",
            "h264ref",
            "bzip2",
            "hmmer",
            "gamess",
        ] {
            assert!(test.iter().any(|n| n == name), "test missing {name}");
        }
    }

    #[test]
    fn every_fourth_rank_is_a_test_workload() {
        for w in WorkloadSpec::by_severity_rank() {
            let expected = w.severity_rank % 4 == 0;
            assert_eq!(
                w.set == SetKind::Test,
                expected,
                "{} at rank {} has wrong set",
                w.name,
                w.severity_rank
            );
        }
    }

    #[test]
    fn heats_are_positive_and_finite() {
        // `heat` is a calibration constant fitted so the *realized* peak
        // severity is monotone in rank (verified by the Fig. 2 sweep in
        // the bench harness); it need not itself be monotone.
        for w in ALL_WORKLOADS.iter() {
            assert!(
                w.heat.is_finite() && w.heat > 0.0,
                "{} heat invalid",
                w.name
            );
        }
    }

    #[test]
    fn mixes_are_normalised() {
        for w in ALL_WORKLOADS.iter() {
            assert!(
                (w.mix.total() - 1.0).abs() < 1e-9,
                "{} mix not normalised",
                w.name
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(WorkloadSpec::by_name("gromacs").is_ok());
        assert!(WorkloadSpec::by_name("doom-eternal").is_err());
    }

    #[test]
    fn paper_narrative_traits_hold() {
        let gromacs = WorkloadSpec::by_name("gromacs").unwrap();
        let gamess = WorkloadSpec::by_name("gamess").unwrap();
        let sjeng = WorkloadSpec::by_name("sjeng").unwrap();
        let hmmer = WorkloadSpec::by_name("hmmer").unwrap();
        // gromacs has the fastest, largest power spikes in the suite.
        assert!(gromacs.spikiness >= 0.8);
        assert!(gromacs.spike_period_us <= 150.0);
        // gamess / hmmer / sjeng are smooth.
        assert!(gamess.spikiness < 0.2);
        assert!(hmmer.spikiness <= 0.15);
        assert!(sjeng.spikiness <= 0.15);
        // mcf is the most memory-bound.
        let mcf = WorkloadSpec::by_name("mcf").unwrap();
        assert!(mcf.mem_sensitivity >= 0.85);
    }

    #[test]
    fn mix_normalisation_panics_on_negative() {
        let result =
            std::panic::catch_unwind(|| InstructionMix::new(-0.1, 0.2, 0.3, 0.2, 0.2, 0.2));
        assert!(result.is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let w = WorkloadSpec::by_name("bzip2").unwrap();
        let json = serde_json::to_string(&w).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, w);
    }
}
