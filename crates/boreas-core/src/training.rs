//! End-to-end Boreas training behind one builder (the Fig. 3 offline
//! flow).
//!
//! [`TrainSpec`] mirrors the closed-loop [`crate::RunSpec`] idiom:
//! pipeline + feature schema in, then chain `vf` / `workloads` /
//! `config` / `threads` / `observe`, and finish with either
//!
//! * [`TrainSpec::fit`] — sweep the workloads over the VF table, extract
//!   the telemetry dataset and train the GBT severity predictor
//!   (histogram trainer, thread-count-invariant); or
//! * [`TrainSpec::fit_thresholds`] — train closed-loop-safe thermal
//!   thresholds for the TH-00 baseline (§III-D / Fig. 4).

use crate::runner::RunSpec;
use crate::vf::VfTable;
use common::units::{GigaHertz, Volts};
use common::Result;
use gbt::{GbtModel, GbtParams};
use hotgauge::Pipeline;
use telemetry::{build_dataset, DatasetSpec, FeatureSet};
use workloads::WorkloadSpec;

/// Configuration of the offline training flow.
#[derive(Debug, Clone)]
pub struct TrainingConfig {
    /// Steps per (workload, VF) extraction run.
    pub steps: usize,
    /// Label horizon (12 = one decision interval).
    pub horizon: usize,
    /// Sensor providing `temperature_sensor_data`.
    pub sensor_idx: usize,
    /// GBT hyper-parameters (Table II defaults).
    pub params: GbtParams,
    /// Label form (see [`telemetry::DatasetSpec::label_cap`]).
    pub label_cap: Option<f64>,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        Self {
            steps: 150,
            horizon: 12,
            sensor_idx: telemetry::MAX_SENSOR_BANK,
            params: GbtParams::default(),
            label_cap: Some(2.0),
        }
    }
}

/// What [`TrainSpec::fit`] produced: the model, the extracted dataset
/// (for importance/CV studies) and the trainer's statistics.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// The trained severity predictor.
    pub model: GbtModel,
    /// The telemetry dataset the model was fitted on.
    pub dataset: gbt::Dataset,
    /// Row/bin/thread accounting from the underlying trainer.
    pub stats: gbt::TrainStats,
}

/// Builder for the offline training flow.
///
/// Defaults: the full telemetry schema ([`FeatureSet::full`]), the paper
/// VF table, the paper training set ([`WorkloadSpec::train_set`]),
/// [`TrainingConfig::default`], automatic thread count, observability
/// off.
pub struct TrainSpec<'a> {
    pipeline: &'a Pipeline,
    features: FeatureSet,
    vf: VfTable,
    workloads: Vec<WorkloadSpec>,
    config: TrainingConfig,
    threads: usize,
    method: gbt::TrainMethod,
    obs: obs::Obs,
}

impl<'a> TrainSpec<'a> {
    /// Starts a spec over a pipeline.
    pub fn new(pipeline: &'a Pipeline) -> TrainSpec<'a> {
        TrainSpec {
            pipeline,
            features: FeatureSet::full(),
            vf: VfTable::paper(),
            workloads: WorkloadSpec::train_set(),
            config: TrainingConfig::default(),
            threads: 0,
            method: gbt::TrainMethod::Histogram,
            obs: obs::Obs::default(),
        }
    }

    /// Sets the telemetry feature schema the model is trained on.
    #[must_use]
    pub fn features(mut self, features: FeatureSet) -> Self {
        self.features = features;
        self
    }

    /// Sets the VF operating-point table.
    #[must_use]
    pub fn vf(mut self, vf: VfTable) -> Self {
        self.vf = vf;
        self
    }

    /// Sets the training workloads.
    #[must_use]
    pub fn workloads(mut self, workloads: &[WorkloadSpec]) -> Self {
        self.workloads = workloads.to_vec();
        self
    }

    /// Sets the full training configuration.
    #[must_use]
    pub fn config(mut self, config: TrainingConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets just the GBT hyper-parameters (keeps the rest of the
    /// config).
    #[must_use]
    pub fn params(mut self, params: GbtParams) -> Self {
        self.config.params = params;
        self
    }

    /// Sets the steps per (workload, VF) extraction run.
    #[must_use]
    pub fn steps(mut self, steps: usize) -> Self {
        self.config.steps = steps;
        self
    }

    /// Sets the trainer thread count (`0` = auto); the trained model is
    /// bit-identical for every value.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Selects the underlying trainer (histogram by default).
    #[must_use]
    pub fn method(mut self, method: gbt::TrainMethod) -> Self {
        self.method = method;
        self
    }

    /// Attaches an observability bundle; training emits `train_*`
    /// counters and `train.bin` / `train.grow` spans through it.
    #[must_use]
    pub fn observe(mut self, obs: &obs::Obs) -> Self {
        self.obs = obs.clone();
        self
    }

    /// Runs the full offline flow: telemetry extraction over every
    /// (workload, VF) pair, then GBT training.
    ///
    /// # Errors
    ///
    /// Propagates pipeline and training errors.
    pub fn fit(&self) -> Result<TrainReport> {
        let points: Vec<(GigaHertz, Volts)> = self
            .vf
            .points()
            .iter()
            .map(|p| (p.frequency, p.voltage))
            .collect();
        let spec = DatasetSpec {
            steps: self.config.steps,
            horizon: self.config.horizon,
            sensor_idx: self.config.sensor_idx,
            label_cap: self.config.label_cap,
        };
        let dataset = {
            let _span = self.obs.tracer.span("train.extract");
            build_dataset(
                self.pipeline,
                &self.features,
                &self.workloads,
                &points,
                &spec,
            )?
        };
        let report = gbt::TrainSpec::new(&dataset)
            .params(self.config.params)
            .threads(self.threads)
            .method(self.method)
            .observe(&self.obs)
            .fit()?;
        Ok(TrainReport {
            model: report.model,
            dataset,
            stats: report.stats,
        })
    }

    /// Trains closed-loop-safe thermal thresholds (§III-D / Fig. 4's
    /// TH-00).
    ///
    /// The paper's TH-00 is "a thermal model trained on a threshold that
    /// is safe for all workloads in the training set": the raw critical
    /// temperatures (lowest sensor reading coinciding with severity 1.0)
    /// are necessary but not sufficient, because the sensor delay lets a
    /// fast hotspot overshoot before the threshold trips. Starting from
    /// `initial`, the threshold of any VF point at which a training
    /// workload still incurs is lowered (along with all higher VF
    /// points, keeping the profile monotone in risk) by one degree per
    /// pass, until every training workload runs `loop_steps` clean or
    /// `max_iters` passes are exhausted. Runs start at the 3.75 GHz
    /// baseline index of the VF table.
    ///
    /// # Errors
    ///
    /// Propagates closed-loop errors.
    pub fn fit_thresholds(
        &self,
        initial: Vec<Option<f64>>,
        loop_steps: usize,
        max_iters: usize,
    ) -> Result<Vec<Option<f64>>> {
        let mut spec = RunSpec::new(self.pipeline)
            .vf(self.vf.clone())
            .steps(loop_steps)
            .obs(&self.obs);
        let mut thresholds = initial;
        for _ in 0..max_iters {
            let mut clean = true;
            for w in &self.workloads {
                let mut c =
                    crate::controller::ThermalController::from_thresholds(thresholds.clone(), 0.0);
                let out = spec.run(w, &mut c)?;
                if out.incursions == 0 {
                    continue;
                }
                clean = false;
                // Lower the threshold of every frequency at which an
                // incursion was observed (and of all higher frequencies,
                // to keep the threshold profile monotone in risk) — by
                // one degree per offending frequency per training pass.
                let mut offending: Vec<usize> = out
                    .records
                    .iter()
                    .filter(|r| r.max_severity.is_incursion())
                    .filter_map(|r| self.vf.index_of(r.frequency))
                    .collect();
                offending.sort_unstable();
                offending.dedup();
                if let Some(&lowest) = offending.first() {
                    for v in thresholds.iter_mut().skip(lowest).flatten() {
                        *v -= 1.0;
                    }
                }
            }
            if clean {
                break;
            }
        }
        Ok(thresholds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trains_a_usable_model_on_a_tiny_flow() {
        let mut pcfg = hotgauge::PipelineConfig::paper();
        pcfg.grid = floorplan::GridSpec::new(8, 6).unwrap();
        let pipeline = pcfg.build().unwrap();
        // 3 workloads, 3 VF points, short runs, small ensemble.
        let ws = vec![
            WorkloadSpec::by_name("gcc").unwrap(),
            WorkloadSpec::by_name("gamess").unwrap(),
            WorkloadSpec::by_name("mcf").unwrap(),
        ];
        let vf = VfTable::new(
            [(3.0, 0.77), (4.0, 0.98), (5.0, 1.4)]
                .iter()
                .map(|&(f, v)| crate::vf::VfPoint {
                    frequency: GigaHertz::new(f),
                    voltage: Volts::new(v),
                })
                .collect(),
        )
        .unwrap();
        let features = FeatureSet::from_names(&[
            "temperature_sensor_data",
            "frequency_ghz",
            "voltage_v",
            "FPU_cdb_duty_cycle",
            "committed_instructions",
        ])
        .unwrap();
        let cfg = TrainingConfig {
            steps: 60,
            horizon: 12,
            sensor_idx: 3,
            params: GbtParams::default().with_estimators(40),
            label_cap: Some(2.0),
        };
        let report = TrainSpec::new(&pipeline)
            .features(features.clone())
            .vf(vf)
            .workloads(&ws)
            .config(cfg)
            .threads(1)
            .fit()
            .unwrap();
        let (model, data) = (report.model, report.dataset);
        assert_eq!(data.len(), 3 * 3 * 48);
        assert_eq!(report.stats.rows, data.len());
        assert_eq!(report.stats.threads, 1);
        let mse = model.mse_on(&data);
        assert!(mse < 0.02, "training MSE {mse} too high");
        // Severity prediction must increase with frequency for the same
        // activity snapshot.
        let row = data.row(10);
        let lo = model.predict(&row);
        let hi = model.predict(&features.rescale_to_vf(
            &row,
            GigaHertz::new(row[1]),
            GigaHertz::new(5.0),
            Volts::new(1.4),
        ));
        assert!(
            hi > lo,
            "severity prediction should rise with frequency ({lo} -> {hi})"
        );
    }
}
