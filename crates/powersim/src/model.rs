//! The unit-level power computation and its spatial distribution.

use crate::config::{peak_power_w, PowerConfig};
use common::units::{GigaHertz, Volts};
use floorplan::{Grid, UnitKind};
use perfsim::{CounterId as C, IntervalCounters};

/// Computes per-cell power maps from interval counters.
///
/// Construction rasterises the unit→cell mapping once; each call to
/// [`PowerModel::power_map`] is then allocation-light and cheap enough for
/// the full Fig. 2 sweep.
#[derive(Debug, Clone)]
pub struct PowerModel {
    cfg: PowerConfig,
    /// Flat cell indices of each unit, indexed by `UnitKind::index()`.
    unit_cells: Vec<Vec<usize>>,
    n_cells: usize,
}

impl PowerModel {
    /// Builds the model for a rasterised floorplan.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use
    /// [`PowerConfig::validate`] first for fallible handling.
    pub fn new(grid: &Grid, cfg: PowerConfig) -> Self {
        cfg.validate().expect("invalid power configuration");
        let unit_cells = UnitKind::ALL
            .iter()
            .map(|&k| grid.cells_of(k).into_iter().map(|c| grid.flat(c)).collect())
            .collect();
        Self {
            cfg,
            unit_cells,
            n_cells: grid.spec().cells(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PowerConfig {
        &self.cfg
    }

    /// Duty cycle of each unit derived from the interval counters.
    pub fn unit_duty(&self, c: &IntervalCounters) -> [f64; UnitKind::ALL.len()] {
        let cycles = c.get(C::TotalCycles).max(1.0);
        let duty = |ops: f64, ports: f64| (ops / (cycles * ports)).clamp(0.0, 1.0);
        let mut d = [0.0; UnitKind::ALL.len()];
        d[UnitKind::Ifu.index()] = c.get(C::IfuDutyCycle);
        d[UnitKind::ICache.index()] = c.get(C::IcacheDutyCycle);
        d[UnitKind::Itlb.index()] = duty(c.get(C::ItlbTotalAccesses), 1.0);
        d[UnitKind::Bpu.index()] =
            duty(c.get(C::BtbReadAccesses) + c.get(C::BtbWriteAccesses), 1.0);
        d[UnitKind::Decode.index()] = c.get(C::DecodeDutyCycle);
        d[UnitKind::Rename.index()] = c.get(C::RenameDutyCycle);
        d[UnitKind::Rob.index()] = c.get(C::RobDutyCycle);
        d[UnitKind::Scheduler.index()] = c.get(C::SchedulerDutyCycle);
        d[UnitKind::IntRf.index()] =
            duty(c.get(C::IntRegfileReads) + c.get(C::IntRegfileWrites), 8.0);
        d[UnitKind::FpRf.index()] = duty(c.get(C::FpRegfileReads) + c.get(C::FpRegfileWrites), 4.0);
        d[UnitKind::Alu.index()] = c.get(C::AluCdbDutyCycle);
        d[UnitKind::Mul.index()] = c.get(C::MulCdbDutyCycle);
        d[UnitKind::Fpu.index()] = c.get(C::FpuCdbDutyCycle);
        d[UnitKind::Cdb.index()] = duty(
            c.get(C::CdbAluAccesses) + c.get(C::CdbMulAccesses) + c.get(C::CdbFpuAccesses),
            4.0,
        );
        d[UnitKind::Lsu.index()] = c.get(C::LsuDutyCycle);
        d[UnitKind::DCache.index()] = c.get(C::DcacheDutyCycle);
        d[UnitKind::Dtlb.index()] = duty(c.get(C::DtlbTotalAccesses), 2.0);
        d[UnitKind::L2.index()] = c.get(C::L2DutyCycle);
        d
    }

    /// Dynamic + leakage power of each unit, W.
    ///
    /// `intensity` is the workload's data-dependent switching factor for
    /// the interval (calibrated `heat` × burst envelope). `unit_temps_c`
    /// supplies each unit's current average temperature for the leakage
    /// feedback.
    pub fn unit_power(
        &self,
        counters: &IntervalCounters,
        intensity: f64,
        voltage: Volts,
        freq: GigaHertz,
        unit_temps_c: &[f64; UnitKind::ALL.len()],
    ) -> [f64; UnitKind::ALL.len()] {
        let cfg = &self.cfg;
        let vf_scale = (voltage.value() / cfg.v_ref).powi(2) * (freq.value() / cfg.f_ref_ghz);
        let duties = self.unit_duty(counters);
        let mut power = [0.0; UnitKind::ALL.len()];
        for kind in UnitKind::ALL {
            let i = kind.index();
            let peak = peak_power_w(kind);
            // Arrays switch with lower data-dependent intensity than
            // random logic: their activity is address/port limited.
            let eff_intensity = if kind.is_array() {
                0.6 + 0.4 * intensity
            } else {
                intensity
            };
            let duty_eff =
                cfg.idle_fraction + (1.0 - cfg.idle_fraction) * duties[i] * eff_intensity;
            let dynamic = cfg.scale * peak * duty_eff * vf_scale;
            // The exponent is clamped: beyond ~2 e-folds the device would
            // already be destroyed, and an unbounded exponential makes the
            // solver blow up numerically instead of reporting severity 1.
            let leak_arg = ((unit_temps_c[i] - cfg.leakage_t_ref_c) / cfg.leakage_theta_k).min(2.0);
            let leak = cfg.leakage_fraction * peak * (voltage.value() / cfg.v_ref) * leak_arg.exp();
            power[i] = dynamic + leak;
        }
        power
    }

    /// Average temperature of each unit from a die temperature map.
    pub fn unit_temps(&self, die_temps: &[f64]) -> [f64; UnitKind::ALL.len()] {
        let mut t = [0.0; UnitKind::ALL.len()];
        for (i, cells) in self.unit_cells.iter().enumerate() {
            if cells.is_empty() {
                t[i] = die_temps.first().copied().unwrap_or(0.0);
            } else {
                t[i] = cells.iter().map(|&c| die_temps[c]).sum::<f64>() / cells.len() as f64;
            }
        }
        t
    }

    /// Full per-cell power map (W per cell) for one interval.
    ///
    /// # Panics
    ///
    /// Panics if `die_temps` does not match the grid size.
    pub fn power_map(
        &self,
        counters: &IntervalCounters,
        intensity: f64,
        voltage: Volts,
        freq: GigaHertz,
        die_temps: &[f64],
    ) -> Vec<f64> {
        let mut map = Vec::new();
        self.power_map_into(counters, intensity, voltage, freq, die_temps, &mut map);
        map
    }

    /// [`PowerModel::power_map`] into a caller-owned buffer (cleared and
    /// refilled), so the per-step simulation loop allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics if `die_temps` does not match the grid size.
    pub fn power_map_into(
        &self,
        counters: &IntervalCounters,
        intensity: f64,
        voltage: Volts,
        freq: GigaHertz,
        die_temps: &[f64],
        out: &mut Vec<f64>,
    ) {
        assert_eq!(die_temps.len(), self.n_cells, "die_temps length mismatch");
        let unit_temps = self.unit_temps(die_temps);
        let unit_power = self.unit_power(counters, intensity, voltage, freq, &unit_temps);
        out.clear();
        out.resize(
            self.n_cells,
            self.cfg.uncore_background_w / self.n_cells as f64,
        );
        for (i, cells) in self.unit_cells.iter().enumerate() {
            if cells.is_empty() {
                continue;
            }
            let per_cell = unit_power[i] / cells.len() as f64;
            for &c in cells {
                out[c] += per_cell;
            }
        }
    }

    /// Sum of a power map, W.
    pub fn total_power(map: &[f64]) -> f64 {
        map.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use floorplan::{Floorplan, GridSpec};
    use perfsim::CoreModel;
    use workloads::{PhaseEngine, WorkloadSpec};

    fn setup() -> (Grid, PowerModel) {
        let grid = Grid::rasterize(&Floorplan::skylake_like(), GridSpec::default()).unwrap();
        let model = PowerModel::new(&grid, PowerConfig::default());
        (grid, model)
    }

    fn counters_for(name: &str, f: f64, v: f64) -> (IntervalCounters, f64) {
        let spec = WorkloadSpec::by_name(name).unwrap();
        let mut phases = PhaseEngine::new(&spec, 7);
        let act = phases.take_steps(4).pop().unwrap();
        let c = CoreModel::default().simulate_step(&spec, &act, GigaHertz::new(f), Volts::new(v));
        (c, spec.heat * act.core)
    }

    #[test]
    fn power_scales_with_voltage_and_frequency() {
        let (grid, model) = setup();
        let ambient = vec![45.0; grid.spec().cells()];
        let (c, i) = counters_for("gamess", 4.0, 1.0);
        let p_lo = PowerModel::total_power(&model.power_map(
            &c,
            i,
            Volts::new(0.8),
            GigaHertz::new(3.0),
            &ambient,
        ));
        let p_hi = PowerModel::total_power(&model.power_map(
            &c,
            i,
            Volts::new(1.4),
            GigaHertz::new(5.0),
            &ambient,
        ));
        // (1.4/0.8)^2 * (5/3) = 5.1x on the dynamic part.
        assert!(
            p_hi > 3.0 * p_lo,
            "power should scale strongly: {p_lo} -> {p_hi}"
        );
    }

    #[test]
    fn fp_workload_heats_fpu_int_workload_heats_alu() {
        let (grid, model) = setup();
        let ambient = vec![45.0; grid.spec().cells()];
        let (c_fp, i_fp) = counters_for("gamess", 4.5, 1.15);
        let (c_int, i_int) = counters_for("bzip2", 4.5, 1.15);
        let t = model.unit_temps(&ambient);
        let p_fp = model.unit_power(&c_fp, i_fp, Volts::new(1.15), GigaHertz::new(4.5), &t);
        let p_int = model.unit_power(&c_int, i_int, Volts::new(1.15), GigaHertz::new(4.5), &t);
        assert!(p_fp[UnitKind::Fpu.index()] > p_int[UnitKind::Fpu.index()] * 1.5);
        assert!(p_int[UnitKind::Alu.index()] > p_fp[UnitKind::Alu.index()]);
    }

    #[test]
    fn leakage_grows_with_temperature() {
        let (grid, model) = setup();
        let (c, i) = counters_for("gcc", 4.0, 1.0);
        let cold = model.unit_temps(&vec![45.0; grid.spec().cells()]);
        let hot = model.unit_temps(&vec![95.0; grid.spec().cells()]);
        let p_cold = model.unit_power(&c, i, Volts::new(1.0), GigaHertz::new(4.0), &cold);
        let p_hot = model.unit_power(&c, i, Volts::new(1.0), GigaHertz::new(4.0), &hot);
        for k in UnitKind::ALL {
            assert!(
                p_hot[k.index()] > p_cold[k.index()],
                "{k} leakage must grow"
            );
        }
    }

    #[test]
    fn total_power_is_plausible_at_turbo() {
        let (grid, model) = setup();
        let ambient = vec![45.0; grid.spec().cells()];
        for name in ["gamess", "gromacs", "mcf", "bzip2"] {
            let (c, i) = counters_for(name, 5.0, 1.4);
            let p = PowerModel::total_power(&model.power_map(
                &c,
                i,
                Volts::new(1.4),
                GigaHertz::new(5.0),
                &ambient,
            ));
            assert!(
                (5.0..80.0).contains(&p),
                "{name}: total power {p} W out of plausible range"
            );
        }
    }

    #[test]
    fn map_covers_all_cells_and_is_nonnegative() {
        let (grid, model) = setup();
        let ambient = vec![45.0; grid.spec().cells()];
        let (c, i) = counters_for("lbm", 4.0, 0.98);
        let map = model.power_map(&c, i, Volts::new(0.98), GigaHertz::new(4.0), &ambient);
        assert_eq!(map.len(), grid.spec().cells());
        assert!(
            map.iter().all(|&p| p > 0.0),
            "uncore background keeps all cells > 0"
        );
    }

    #[test]
    fn idle_floor_keeps_units_warm() {
        let (grid, model) = setup();
        let ambient = vec![45.0; grid.spec().cells()];
        let zero = IntervalCounters::zeroed();
        let t = model.unit_temps(&ambient);
        let p = model.unit_power(&zero, 0.0, Volts::new(0.98), GigaHertz::new(4.0), &t);
        for k in UnitKind::ALL {
            assert!(p[k.index()] > 0.0, "{k} should draw idle power");
        }
    }

    #[test]
    fn duties_are_fractions() {
        let (_, model) = setup();
        let (c, _) = counters_for("gromacs", 5.0, 1.4);
        for (k, d) in UnitKind::ALL.iter().zip(model.unit_duty(&c)) {
            assert!((0.0..=1.0).contains(&d), "{k}: duty {d}");
        }
    }
}
