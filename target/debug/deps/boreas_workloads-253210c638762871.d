/root/repo/target/debug/deps/boreas_workloads-253210c638762871.d: crates/workloads/src/lib.rs crates/workloads/src/phase.rs crates/workloads/src/spec.rs

/root/repo/target/debug/deps/boreas_workloads-253210c638762871: crates/workloads/src/lib.rs crates/workloads/src/phase.rs crates/workloads/src/spec.rs

crates/workloads/src/lib.rs:
crates/workloads/src/phase.rs:
crates/workloads/src/spec.rs:
