//! A deliberately tiny HTTP/1.1 responder for `GET /metrics`.
//!
//! Scrapers (Prometheus, the CI smoke job, `curl`) need exactly one
//! endpoint, served sequentially from one thread — no keep-alive, no
//! routing table, no HTTP library. Every response closes the
//! connection.
//!
//! * `GET /metrics` — the [`obs::Registry`] snapshot in the Prometheus
//!   text exposition format (version 0.0.4);
//! * `GET /healthz` — `ok`, for readiness polling;
//! * a known path with any other method — 405 with an `Allow: GET`
//!   header;
//! * anything else — 404.
//!
//! Every response carries a correct `Content-Length`.

use obs::Registry;
use std::io::{Read, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Largest request head we bother reading.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// How often the accept loop re-checks the stop flag.
const POLL: Duration = Duration::from_millis(50);

/// Serves the metrics endpoint on `listener` until `stop` is set.
///
/// The listener is switched to non-blocking so the thread can poll
/// `stop`; requests themselves are handled with a short read timeout.
/// Returns the serving thread's handle — join it after setting `stop`.
pub fn spawn_metrics_server(
    listener: TcpListener,
    registry: Registry,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    thread::Builder::new()
        .name("serve-metrics".to_string())
        .spawn(move || {
            if listener.set_nonblocking(true).is_err() {
                return;
            }
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => handle(stream, &registry),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(POLL),
                    Err(_) => thread::sleep(POLL),
                }
            }
        })
        .expect("spawn metrics thread")
}

fn handle(mut stream: std::net::TcpStream, registry: &Registry) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    // Read until the end of the request head (we ignore any body).
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.len() > MAX_REQUEST_BYTES {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request_line = head
        .split(|b| *b == b'\r' || *b == b'\n')
        .next()
        .unwrap_or(&[]);
    let target = request_line
        .split(|b| *b == b' ')
        .nth(1)
        .unwrap_or(b"")
        .to_vec();
    let is_get = request_line.starts_with(b"GET ");
    let known_path = matches!(target.as_slice(), b"/metrics" | b"/healthz");
    let (status, content_type, body, allow) = match (is_get, target.as_slice()) {
        (true, b"/metrics") => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            registry.snapshot().to_prometheus(),
            false,
        ),
        (true, b"/healthz") => (
            "200 OK",
            "text/plain; charset=utf-8",
            "ok\n".to_string(),
            false,
        ),
        (false, _) if known_path => (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
            true,
        ),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
            false,
        ),
    };
    let allow_header = if allow { "Allow: GET\r\n" } else { "" };
    let response = format!(
        "HTTP/1.1 {status}\r\n{allow_header}Content-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn get(addr: std::net::SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").expect("request");
        let mut out = String::new();
        s.read_to_string(&mut out).expect("response");
        out
    }

    #[test]
    fn serves_metrics_health_and_404() {
        let registry = Registry::new();
        registry
            .counter("boreas_serve_frames_total", "frames")
            .add(3);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let stop = Arc::new(AtomicBool::new(false));
        let handle = spawn_metrics_server(listener, registry, stop.clone());

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"), "{metrics}");
        assert!(metrics.contains("boreas_serve_frames_total 3"), "{metrics}");
        assert!(get(addr, "/healthz").contains("ok"));
        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));

        let mut s = TcpStream::connect(addr).expect("connect");
        write!(s, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").expect("request");
        let mut post = String::new();
        s.read_to_string(&mut post).expect("response");
        assert!(post.starts_with("HTTP/1.1 405"), "{post}");
        assert!(post.contains("Allow: GET\r\n"), "{post}");
        assert!(post.contains("Content-Length:"), "{post}");

        stop.store(true, Ordering::SeqCst);
        handle.join().expect("join");
    }
}
