/root/repo/target/debug/deps/table1_vf_pairs-cf598e39cfe3cb8a.d: crates/bench/src/bin/table1_vf_pairs.rs

/root/repo/target/debug/deps/table1_vf_pairs-cf598e39cfe3cb8a: crates/bench/src/bin/table1_vf_pairs.rs

crates/bench/src/bin/table1_vf_pairs.rs:
