//! Lock-cheap metrics: counters, gauges and fixed-bucket histograms.
//!
//! A [`Registry`] hands out cheap cloneable handles backed by atomic
//! storage, so worker threads record without contention; the registry's
//! own lock is touched only at registration and snapshot time. A
//! disabled registry ([`Registry::disabled`]) hands out no-op handles
//! whose record path is a single branch.
//!
//! Every family is tagged with a [`Determinism`] domain:
//!
//! * [`Determinism::Result`] — derived from simulation *results*, so the
//!   values are byte-identical whether jobs were simulated or served from
//!   the artifact cache, and independent of thread count;
//! * [`Determinism::Execution`] — derived from what actually *ran* (jobs
//!   executed, wall times, injected faults), which legitimately differs
//!   between cold and warm caches.
//!
//! Exporters can render either the full snapshot or the deterministic
//! subset ([`Snapshot::deterministic_only`]).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What kind of metric a family is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing `u64`.
    Counter,
    /// Last-write-wins `f64`.
    Gauge,
    /// Fixed-bucket `f64` distribution.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Whether a family's values are deterministic for a given scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Determinism {
    /// Derived from results: identical for cache-hit and cache-miss
    /// replays of the same scenario, at any thread count.
    Result,
    /// Derived from execution: varies with caching, threads and wall
    /// clock.
    Execution,
}

/// Adds `v` to an `f64` stored as bits in an [`AtomicU64`].
fn atomic_f64_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

#[derive(Debug, Default)]
struct CounterCell {
    value: AtomicU64,
}

#[derive(Debug, Default)]
struct GaugeCell {
    bits: AtomicU64,
}

#[derive(Debug)]
struct HistogramCell {
    /// Upper bucket bounds (`le` semantics), strictly increasing; an
    /// implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries,
    /// non-cumulative; the exporter accumulates).
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of *finite* observations, as `f64` bits.
    sum_bits: AtomicU64,
}

impl HistogramCell {
    fn new(bounds: &[f64]) -> Self {
        let mut bounds: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        bounds.sort_by(|a, b| a.partial_cmp(b).expect("finite bounds"));
        bounds.dedup();
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    fn observe(&self, v: f64) {
        // Non-finite observations land in the +Inf bucket and are kept
        // out of the sum so `name_sum` stays a number.
        let idx = if v.is_nan() {
            self.bounds.len()
        } else {
            self.bounds
                .iter()
                .position(|b| v <= *b)
                .unwrap_or(self.bounds.len())
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if v.is_finite() {
            atomic_f64_add(&self.sum_bits, v);
        }
    }
}

#[derive(Debug, Clone)]
enum Cell {
    Counter(Arc<CounterCell>),
    Gauge(Arc<GaugeCell>),
    Histogram(Arc<HistogramCell>),
}

#[derive(Debug)]
struct Family {
    help: String,
    kind: MetricKind,
    determinism: Determinism,
    cell: Cell,
}

#[derive(Debug, Default)]
struct RegistryInner {
    families: Mutex<BTreeMap<String, Family>>,
}

/// Handle registry for one observability scope (typically one process
/// or one experiment session).
///
/// Cloning shares the underlying storage. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<RegistryInner>>,
}

/// A monotonically increasing counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<CounterCell>>,
}

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.cell {
            c.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disabled handle).
    pub fn value(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.value.load(Ordering::Relaxed))
    }
}

/// A last-write-wins gauge handle.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<GaugeCell>>,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(c) = &self.cell {
            c.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 for a disabled handle).
    pub fn value(&self) -> f64 {
        self.cell
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.bits.load(Ordering::Relaxed)))
    }
}

/// A fixed-bucket histogram handle.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    cell: Option<Arc<HistogramCell>>,
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        if let Some(c) = &self.cell {
            c.observe(v);
        }
    }

    /// Total observations so far (0 for a disabled handle).
    pub fn count(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }
}

impl Registry {
    /// An enabled registry.
    pub fn new() -> Registry {
        Registry {
            inner: Some(Arc::default()),
        }
    }

    /// A registry whose handles are no-ops (a single branch per record).
    pub fn disabled() -> Registry {
        Registry { inner: None }
    }

    /// `true` when recording actually stores anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        determinism: Determinism,
        make: impl FnOnce() -> Cell,
    ) -> Cell {
        let inner = match &self.inner {
            Some(i) => i,
            None => return make(),
        };
        let mut families = inner.families.lock().expect("metrics registry poisoned");
        if let Some(existing) = families.get(name) {
            assert!(
                existing.kind == kind,
                "metric `{name}` already registered as a {}",
                existing.kind.as_str()
            );
            return existing.cell.clone();
        }
        let cell = make();
        families.insert(
            name.to_string(),
            Family {
                help: help.to_string(),
                kind,
                determinism,
                cell: cell.clone(),
            },
        );
        cell
    }

    fn counter_in(&self, name: &str, help: &str, d: Determinism) -> Counter {
        if self.inner.is_none() {
            return Counter::default();
        }
        match self.register(name, help, MetricKind::Counter, d, || {
            Cell::Counter(Arc::default())
        }) {
            Cell::Counter(c) => Counter { cell: Some(c) },
            _ => unreachable!("kind checked at registration"),
        }
    }

    fn gauge_in(&self, name: &str, help: &str, d: Determinism) -> Gauge {
        if self.inner.is_none() {
            return Gauge::default();
        }
        match self.register(name, help, MetricKind::Gauge, d, || {
            Cell::Gauge(Arc::default())
        }) {
            Cell::Gauge(c) => Gauge { cell: Some(c) },
            _ => unreachable!("kind checked at registration"),
        }
    }

    fn histogram_in(&self, name: &str, help: &str, bounds: &[f64], d: Determinism) -> Histogram {
        if self.inner.is_none() {
            return Histogram::default();
        }
        match self.register(name, help, MetricKind::Histogram, d, || {
            Cell::Histogram(Arc::new(HistogramCell::new(bounds)))
        }) {
            Cell::Histogram(c) => Histogram { cell: Some(c) },
            _ => unreachable!("kind checked at registration"),
        }
    }

    /// Registers (or retrieves) an execution-domain counter.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_in(name, help, Determinism::Execution)
    }

    /// Registers (or retrieves) a result-domain counter (identical for
    /// cached and fresh replays of the same scenario).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind.
    pub fn result_counter(&self, name: &str, help: &str) -> Counter {
        self.counter_in(name, help, Determinism::Result)
    }

    /// Registers (or retrieves) an execution-domain gauge.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_in(name, help, Determinism::Execution)
    }

    /// Registers (or retrieves) a result-domain gauge.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind.
    pub fn result_gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_in(name, help, Determinism::Result)
    }

    /// Registers (or retrieves) an execution-domain histogram with the
    /// given upper bucket bounds (a `+Inf` bucket is implicit; bounds are
    /// sorted and deduplicated, non-finite bounds dropped).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        self.histogram_in(name, help, bounds, Determinism::Execution)
    }

    /// Registers (or retrieves) a result-domain histogram.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind.
    pub fn result_histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        self.histogram_in(name, help, bounds, Determinism::Result)
    }

    /// A point-in-time copy of every registered family, name-sorted.
    pub fn snapshot(&self) -> Snapshot {
        let inner = match &self.inner {
            Some(i) => i,
            None => return Snapshot::default(),
        };
        let families = inner.families.lock().expect("metrics registry poisoned");
        let families = families
            .iter()
            .map(|(name, f)| MetricFamily {
                name: name.clone(),
                help: f.help.clone(),
                kind: f.kind,
                determinism: f.determinism,
                value: match &f.cell {
                    Cell::Counter(c) => MetricValue::Counter(c.value.load(Ordering::Relaxed)),
                    Cell::Gauge(g) => {
                        MetricValue::Gauge(f64::from_bits(g.bits.load(Ordering::Relaxed)))
                    }
                    Cell::Histogram(h) => MetricValue::Histogram {
                        bounds: h.bounds.clone(),
                        buckets: h
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                        count: h.count.load(Ordering::Relaxed),
                        sum: f64::from_bits(h.sum_bits.load(Ordering::Relaxed)),
                    },
                },
            })
            .collect();
        Snapshot { families }
    }
}

/// One family in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricFamily {
    /// Metric name (Prometheus-safe: `[a-zA-Z_:][a-zA-Z0-9_:]*`).
    pub name: String,
    /// Help text.
    pub help: String,
    /// Counter, gauge or histogram.
    pub kind: MetricKind,
    /// Result- or execution-domain.
    pub determinism: Determinism,
    /// The family's current value.
    pub value: MetricValue,
}

/// The value payload of one family.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state.
    Histogram {
        /// Upper bucket bounds (`+Inf` implicit).
        bounds: Vec<f64>,
        /// Non-cumulative per-bucket counts (`bounds.len() + 1` entries).
        buckets: Vec<u64>,
        /// Total observations.
        count: u64,
        /// Sum of finite observations.
        sum: f64,
    },
}

/// Point-in-time copy of a registry, name-sorted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Every family, sorted by name.
    pub families: Vec<MetricFamily>,
}

impl Snapshot {
    /// The subset of families whose values are deterministic for a given
    /// scenario (see [`Determinism::Result`]).
    pub fn deterministic_only(&self) -> Snapshot {
        Snapshot {
            families: self
                .families
                .iter()
                .filter(|f| f.determinism == Determinism::Result)
                .cloned()
                .collect(),
        }
    }

    /// Looks a family up by name.
    pub fn family(&self, name: &str) -> Option<&MetricFamily> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        crate::export::to_prometheus(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("jobs_total", "jobs");
        c.inc();
        c.add(4);
        assert_eq!(c.value(), 5);
        let g = r.gauge("threads", "threads");
        g.set(8.0);
        assert_eq!(g.value(), 8.0);
        // Same name returns the same cell.
        let c2 = r.counter("jobs_total", "jobs");
        c2.inc();
        assert_eq!(c.value(), 6);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _c = r.counter("x", "x");
        let _g = r.gauge("x", "x");
    }

    #[test]
    fn disabled_handles_are_noops() {
        let r = Registry::disabled();
        assert!(!r.is_enabled());
        let c = r.counter("a", "a");
        c.add(100);
        assert_eq!(c.value(), 0);
        let h = r.histogram("h", "h", &[1.0]);
        h.observe(0.5);
        assert_eq!(h.count(), 0);
        assert!(r.snapshot().families.is_empty());
    }

    #[test]
    fn histogram_bucket_edges() {
        let r = Registry::new();
        let h = r.histogram("lat", "latency", &[1.0, 2.5, 10.0]);
        h.observe(0.0); // below first bound -> bucket 0
        h.observe(1.0); // exactly on a bound -> le semantics, bucket 0
        h.observe(1.0000001); // just above -> bucket 1
        h.observe(2.5); // on second bound -> bucket 1
        h.observe(10.0); // on last bound -> bucket 2
        h.observe(11.0); // above all bounds -> +Inf bucket
        h.observe(-3.0); // negative -> bucket 0
        let snap = r.snapshot();
        match &snap.family("lat").unwrap().value {
            MetricValue::Histogram {
                bounds,
                buckets,
                count,
                sum,
            } => {
                assert_eq!(bounds, &[1.0, 2.5, 10.0]);
                // 0.0, 1.0 (on the bound) and -3.0 land in bucket 0.
                assert_eq!(buckets, &[3, 2, 1, 1][..]);
                assert_eq!(*count, 7);
                assert!((*sum - (0.0 + 1.0 + 1.0000001 + 2.5 + 10.0 + 11.0 - 3.0)).abs() < 1e-9);
            }
            other => panic!("unexpected value {other:?}"),
        }
    }

    #[test]
    fn histogram_nonfinite_observations() {
        let r = Registry::new();
        let h = r.histogram("x", "x", &[1.0]);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(f64::NEG_INFINITY); // -inf <= 1.0 -> bucket 0, not in sum
        h.observe(0.5);
        match &r.snapshot().family("x").unwrap().value {
            MetricValue::Histogram {
                buckets,
                count,
                sum,
                ..
            } => {
                assert_eq!(*count, 4);
                assert_eq!(buckets, &[2, 2][..], "NaN and +inf land in +Inf bucket");
                assert!((sum - 0.5).abs() < 1e-12, "sum only counts finite values");
            }
            other => panic!("unexpected value {other:?}"),
        }
    }

    #[test]
    fn histogram_bounds_sorted_and_deduped() {
        let r = Registry::new();
        let h = r.histogram("x", "x", &[5.0, 1.0, 5.0, f64::INFINITY]);
        h.observe(2.0);
        match &r.snapshot().family("x").unwrap().value {
            MetricValue::Histogram {
                bounds, buckets, ..
            } => {
                assert_eq!(bounds, &[1.0, 5.0]);
                assert_eq!(buckets, &[0, 1, 0][..]);
            }
            other => panic!("unexpected value {other:?}"),
        }
    }

    #[test]
    fn empty_bounds_single_inf_bucket() {
        let r = Registry::new();
        let h = r.histogram("x", "x", &[]);
        h.observe(123.0);
        match &r.snapshot().family("x").unwrap().value {
            MetricValue::Histogram {
                bounds, buckets, ..
            } => {
                assert!(bounds.is_empty());
                assert_eq!(buckets, &[1][..]);
            }
            other => panic!("unexpected value {other:?}"),
        }
    }

    #[test]
    fn deterministic_subset_filters_execution_families() {
        let r = Registry::new();
        r.counter("exec_total", "e").inc();
        r.result_counter("result_total", "r").inc();
        let det = r.snapshot().deterministic_only();
        assert_eq!(det.families.len(), 1);
        assert_eq!(det.families[0].name, "result_total");
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let r = Registry::new();
        let c = r.counter("n", "n");
        let h = r.histogram("h", "h", &[0.5]);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.observe(if i % 2 == 0 { 0.25 } else { 0.75 });
                    }
                });
            }
        });
        assert_eq!(c.value(), 4000);
        assert_eq!(h.count(), 4000);
    }
}
