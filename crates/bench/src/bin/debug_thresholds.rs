//! Diagnostic: print the global critical-temperature thresholds the
//! thermal controllers are built from.

use boreas_bench::experiments::Experiment;
fn main() {
    let exp = Experiment::paper().unwrap();
    let crit = exp.critical_temps().unwrap();
    for (i, t) in crit.global_thresholds().iter().enumerate() {
        println!("{:>5.2} GHz: {:?}", exp.vf.point(i).frequency.value(), t);
    }
}
