/root/repo/target/debug/deps/boreas_hotgauge-bff37cb0d2ede7e8.d: crates/hotgauge/src/lib.rs crates/hotgauge/src/events.rs crates/hotgauge/src/mltd.rs crates/hotgauge/src/pipeline.rs crates/hotgauge/src/severity.rs

/root/repo/target/debug/deps/libboreas_hotgauge-bff37cb0d2ede7e8.rlib: crates/hotgauge/src/lib.rs crates/hotgauge/src/events.rs crates/hotgauge/src/mltd.rs crates/hotgauge/src/pipeline.rs crates/hotgauge/src/severity.rs

/root/repo/target/debug/deps/libboreas_hotgauge-bff37cb0d2ede7e8.rmeta: crates/hotgauge/src/lib.rs crates/hotgauge/src/events.rs crates/hotgauge/src/mltd.rs crates/hotgauge/src/pipeline.rs crates/hotgauge/src/severity.rs

crates/hotgauge/src/lib.rs:
crates/hotgauge/src/events.rs:
crates/hotgauge/src/mltd.rs:
crates/hotgauge/src/pipeline.rs:
crates/hotgauge/src/severity.rs:
