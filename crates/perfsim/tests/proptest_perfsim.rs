//! Property tests for the analytical performance model.

use boreas_perfsim::{CoreModel, CounterId, IntervalCounters};
use common::units::{GigaHertz, Volts};
use proptest::prelude::*;
use workloads::{PhaseEngine, ALL_WORKLOADS};

fn simulate(widx: usize, seed: u64, skip: usize, f: f64, v: f64) -> IntervalCounters {
    let spec = &ALL_WORKLOADS[widx];
    let model = CoreModel::default();
    let mut phases = PhaseEngine::new(spec, seed);
    let act = phases.take_steps(skip + 1).pop().expect("non-empty");
    model.simulate_step(spec, &act, GigaHertz::new(f), Volts::new(v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn counters_always_sane(
        widx in 0usize..27,
        seed in 0u64..500,
        skip in 0usize..100,
        f in 2.0..5.0f64,
        v in 0.64..1.4f64,
    ) {
        let c = simulate(widx, seed, skip, f, v);
        prop_assert!(c.is_sane());
        prop_assert!(c.ipc() <= 4.0 + 1e-9);
        prop_assert!(c.get(CounterId::CommittedInstructions) <= c.get(CounterId::FetchedInstructions) + 1e-9);
        prop_assert!(c.get(CounterId::DcacheReadMisses) <= c.get(CounterId::DcacheReadAccesses) * 2.0,
            "misses wildly exceed accesses");
        prop_assert_eq!(c.get(CounterId::FrequencyGhz), f);
        prop_assert_eq!(c.get(CounterId::VoltageV), v);
    }

    #[test]
    fn cycles_scale_exactly_with_frequency(
        widx in 0usize..27,
        seed in 0u64..100,
        f in 2.0..5.0f64,
    ) {
        let c = simulate(widx, seed, 3, f, 1.0);
        prop_assert!((c.get(CounterId::TotalCycles) - f * 80_000.0).abs() < 1e-6);
    }

    #[test]
    fn committed_instructions_monotone_in_frequency(
        widx in 0usize..27,
        seed in 0u64..100,
    ) {
        // Same activity sample at two frequencies: more cycles can never
        // commit fewer instructions.
        let lo = simulate(widx, seed, 5, 2.5, 0.71);
        let hi = simulate(widx, seed, 5, 5.0, 1.4);
        prop_assert!(
            hi.get(CounterId::CommittedInstructions)
                >= lo.get(CounterId::CommittedInstructions) * 0.999
        );
    }

    #[test]
    fn class_counts_partition_committed(
        widx in 0usize..27,
        seed in 0u64..100,
        f in 2.0..5.0f64,
    ) {
        let c = simulate(widx, seed, 2, f, 1.0);
        let total: f64 = [
            CounterId::CommittedIntInstructions,
            CounterId::CommittedMulInstructions,
            CounterId::CommittedFpInstructions,
            CounterId::CommittedLoadInstructions,
            CounterId::CommittedStoreInstructions,
            CounterId::CommittedBranchInstructions,
        ]
        .iter()
        .map(|&id| c.get(id))
        .sum();
        let committed = c.get(CounterId::CommittedInstructions);
        prop_assert!((total - committed).abs() < 1e-6 * (1.0 + committed));
    }
}
