/root/repo/target/debug/deps/boreas_hotgauge-acdb53a05359c5c1.d: crates/hotgauge/src/lib.rs crates/hotgauge/src/events.rs crates/hotgauge/src/mltd.rs crates/hotgauge/src/pipeline.rs crates/hotgauge/src/severity.rs

/root/repo/target/debug/deps/libboreas_hotgauge-acdb53a05359c5c1.rmeta: crates/hotgauge/src/lib.rs crates/hotgauge/src/events.rs crates/hotgauge/src/mltd.rs crates/hotgauge/src/pipeline.rs crates/hotgauge/src/severity.rs

crates/hotgauge/src/lib.rs:
crates/hotgauge/src/events.rs:
crates/hotgauge/src/mltd.rs:
crates/hotgauge/src/pipeline.rs:
crates/hotgauge/src/severity.rs:
