/root/repo/target/debug/deps/boreas_obs-511dac1e2107a26b.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/flight.rs crates/obs/src/metrics.rs crates/obs/src/promlint.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libboreas_obs-511dac1e2107a26b.rlib: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/flight.rs crates/obs/src/metrics.rs crates/obs/src/promlint.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libboreas_obs-511dac1e2107a26b.rmeta: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/flight.rs crates/obs/src/metrics.rs crates/obs/src/promlint.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/flight.rs:
crates/obs/src/metrics.rs:
crates/obs/src/promlint.rs:
crates/obs/src/trace.rs:
