/root/repo/target/debug/deps/proptest_mltd-490e7c8f90477966.d: crates/hotgauge/tests/proptest_mltd.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_mltd-490e7c8f90477966.rmeta: crates/hotgauge/tests/proptest_mltd.rs Cargo.toml

crates/hotgauge/tests/proptest_mltd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
