//! Engine acceptance tests: determinism across thread counts and cache
//! round-trips.

use boreas_core::VfTable;
use boreas_engine::{ControllerSpec, FaultCell, RetryPolicy, Scenario, Session};
use common::units::GigaHertz;
use faults::{EngineFault, EngineFaultKind, EngineFaultPlan, Fault, FaultKind, FaultPlan};
use hotgauge::PipelineConfig;
use std::path::PathBuf;
use workloads::WorkloadSpec;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("boreas-engine-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Silences the default panic hook for the panics these tests inject on
/// purpose; everything else still prints.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                });
            if !message.is_some_and(|m| m.contains("injected engine fault")) {
                default(info);
            }
        }));
    });
}

/// `true` when the JSON layer round-trips values (false under the
/// stubbed offline toolchain, where cache hits are impossible and
/// hit-count assertions are skipped).
fn json_works() -> bool {
    serde_json::to_string(&7u32)
        .ok()
        .and_then(|s| serde_json::from_str::<u32>(&s).ok())
        == Some(7)
}

/// A small VF table so the grid stays cheap: 4 points spanning the
/// paper's range.
fn small_vf() -> VfTable {
    let paper = VfTable::paper();
    let points: Vec<_> = paper.points().iter().step_by(4).copied().collect();
    VfTable::new(points).expect("valid subset table")
}

fn two_workloads() -> Vec<WorkloadSpec> {
    WorkloadSpec::test_set().into_iter().take(2).collect()
}

#[test]
fn sweep_results_are_identical_across_thread_counts() {
    let pipeline = PipelineConfig::paper().build().expect("pipeline");
    let scenario = Scenario::severity_sweep("det-sweep", two_workloads(), small_vf(), 24);

    let one = Session::without_cache(pipeline.clone())
        .threads(1)
        .run(&scenario)
        .expect("single-thread run");
    let four = Session::without_cache(pipeline)
        .threads(4)
        .run(&scenario)
        .expect("four-thread run");

    assert_eq!(one.results, four.results, "structural equality");
    assert_eq!(
        one.results_json().unwrap(),
        four.results_json().unwrap(),
        "byte-identical serialised results"
    );
    assert_eq!(one.counters.jobs_total, 2 * small_vf().len());
    assert_eq!(one.counters.jobs_run, one.counters.jobs_total);
    assert_eq!(one.counters.jobs_cached, 0);
}

#[test]
fn closed_loop_results_are_identical_across_thread_counts() {
    let pipeline = PipelineConfig::paper().build().expect("pipeline");
    let vf = VfTable::paper();
    let sweep = boreas_core::SweepTable::measure(&pipeline, &two_workloads(), &vf, 24)
        .expect("sweep table");
    let thresholds = vec![None; vf.len()];
    let controllers = vec![
        ControllerSpec::global(sweep.global_safe_index().expect("safe index")),
        ControllerSpec::thermal(thresholds, 0.0),
    ];
    let plan = {
        let mut p = FaultPlan::new(7);
        p.push(Fault::new(FaultKind::Dropped).during(12, usize::MAX));
        p
    };
    let scenario = Scenario::closed_loop("det-loop", two_workloads(), vf, 48, controllers)
        .with_faults(vec![FaultCell::new("dropout", plan)]);

    let one = Session::without_cache(pipeline.clone())
        .threads(1)
        .run(&scenario)
        .expect("single-thread run");
    let four = Session::without_cache(pipeline)
        .threads(4)
        .run(&scenario)
        .expect("four-thread run");

    assert_eq!(one.results, four.results);
    assert_eq!(one.results_json().unwrap(), four.results_json().unwrap());
    assert_eq!(one.counters.jobs_total, 2 * 2, "workloads x controllers");
}

#[test]
fn second_run_is_served_entirely_from_cache() {
    let pipeline = PipelineConfig::paper().build().expect("pipeline");
    let scenario = Scenario::severity_sweep("cache-rt", two_workloads(), small_vf(), 24);
    let dir = scratch_dir("roundtrip");

    let cold_session = Session::with_cache_dir(pipeline.clone(), &dir).expect("open cache");
    let cold = cold_session.run(&scenario).expect("cold run");
    assert_eq!(cold.counters.jobs_cached, 0, "cold cache has no entries");
    assert_eq!(cold.counters.jobs_run, cold.counters.jobs_total);

    let warm_session = Session::with_cache_dir(pipeline, &dir).expect("reopen cache");
    let warm = warm_session.run(&scenario).expect("warm run");
    assert_eq!(warm.results, cold.results, "cache returns the same rows");
    if json_works() {
        assert_eq!(
            warm.counters.jobs_cached, warm.counters.jobs_total,
            "warm run must be 100% cache hits"
        );
        assert_eq!(warm.counters.jobs_run, 0);
        assert!((warm.counters.cache_hit_rate() - 1.0).abs() < 1e-12);
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn result_metrics_identical_for_cold_and_warm_cache() {
    let pipeline = PipelineConfig::paper().build().expect("pipeline");
    let scenario = Scenario::severity_sweep("metrics-rt", two_workloads(), small_vf(), 24);
    let dir = scratch_dir("metrics-identity");

    let cold_obs = obs::Obs::new();
    let cold = Session::with_cache_dir(pipeline.clone(), &dir)
        .expect("open cache")
        .observe(&cold_obs)
        .run(&scenario)
        .expect("cold run");

    let warm_obs = obs::Obs::new();
    let warm = Session::with_cache_dir(pipeline, &dir)
        .expect("reopen cache")
        .observe(&warm_obs)
        .run(&scenario)
        .expect("warm run");
    assert_eq!(warm.results, cold.results);

    let cold_rows = cold_obs.metrics.snapshot().deterministic_only();
    let warm_rows = warm_obs.metrics.snapshot().deterministic_only();
    assert!(
        cold_rows.family("scenario_results_total").is_some(),
        "result-domain families recorded"
    );
    assert!(
        cold_rows.family("engine_jobs_run_total").is_none(),
        "execution-domain families filtered out"
    );
    assert_eq!(
        cold_rows.to_prometheus(),
        warm_rows.to_prometheus(),
        "result-domain metrics must not depend on cache hits"
    );

    // Execution-domain telemetry legitimately differs: the cold run
    // simulated every job (and so traced pipeline kernels); a genuinely
    // warm replay traces none of them.
    assert!(cold_obs.tracer.stats().get("pipeline.step").is_some());
    if json_works() {
        assert_eq!(warm.counters.jobs_cached, warm.counters.jobs_total);
        assert!(warm_obs.tracer.stats().get("pipeline.step").is_none());
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_table_matches_direct_measurement() {
    let pipeline = PipelineConfig::paper().build().expect("pipeline");
    let vf = small_vf();
    let workloads = two_workloads();
    let scenario = Scenario::severity_sweep("table", workloads.clone(), vf.clone(), 24);

    let report = Session::without_cache(pipeline.clone())
        .threads(2)
        .run(&scenario)
        .expect("engine sweep");
    let via_engine = report.sweep_table(&scenario).expect("table from report");
    let direct =
        boreas_core::SweepTable::measure(&pipeline, &workloads, &vf, 24).expect("direct sweep");

    assert_eq!(
        via_engine.global_safe_index().expect("engine safe index"),
        direct.global_safe_index().expect("direct safe index"),
        "same globally safe index"
    );
    for w in &workloads {
        let a = via_engine.oracle_index(&w.name).expect("engine row");
        let b = direct.oracle_index(&w.name).expect("direct row");
        assert_eq!(a, b, "{}", w.name);
        for vf_idx in 0..vf.len() {
            let pa = via_engine.peak(&w.name, vf_idx).expect("engine peak");
            let pb = direct.peak(&w.name, vf_idx).expect("direct peak");
            assert_eq!(pa.to_bits(), pb.to_bits(), "{} @ vf {vf_idx}", w.name);
        }
    }
}

#[test]
fn loop_rows_expose_paper_metrics() {
    let pipeline = PipelineConfig::paper().build().expect("pipeline");
    let vf = VfTable::paper();
    let scenario = Scenario::closed_loop(
        "metrics",
        two_workloads(),
        vf.clone(),
        48,
        vec![ControllerSpec::global(0)],
    );
    let report = Session::without_cache(pipeline)
        .run(&scenario)
        .expect("run");
    for row in report.loop_runs() {
        assert_eq!(row.controller, "global@0");
        assert_eq!(row.interval_freq_ghz.len(), 48 / 12);
        assert_eq!(row.interval_peak_severity.len(), 48 / 12);
        assert!(row.avg_frequency_ghz >= GigaHertz::new(2.0).value());
        assert!(row.fault.is_none());
        assert!(row.worst_stage.is_none(), "plain controllers have no stage");
    }
}

#[test]
fn transient_injected_panic_is_absorbed_by_retry() {
    quiet_injected_panics();
    let pipeline = PipelineConfig::paper().build().expect("pipeline");
    let scenario = Scenario::severity_sweep("retry-absorb", two_workloads(), small_vf(), 24);

    let clean = Session::without_cache(pipeline.clone())
        .threads(2)
        .run(&scenario)
        .expect("clean run");

    // Job 0 panics on its first attempt only; the default policy (two
    // attempts) absorbs it.
    let plan = EngineFaultPlan::new(11)
        .with(EngineFault::new(EngineFaultKind::JobPanic { fail_attempts: 1 }).on_job(0));
    let faulted = Session::without_cache(pipeline)
        .threads(2)
        .inject_engine_faults(plan)
        .run(&scenario)
        .expect("faulted run");

    assert!(faulted.is_complete(), "retry must absorb the panic");
    assert_eq!(faulted.counters.retries, 1);
    assert_eq!(
        faulted.results, clean.results,
        "results unchanged by the fault"
    );
    assert_eq!(
        faulted.results_json().unwrap(),
        clean.results_json().unwrap(),
        "byte-identical serialised results"
    );
}

#[test]
fn persistent_panic_quarantines_one_job_and_keeps_the_rest() {
    quiet_injected_panics();
    let pipeline = PipelineConfig::paper().build().expect("pipeline");
    let scenario = Scenario::severity_sweep("quarantine", two_workloads(), small_vf(), 24);
    let n = 2 * small_vf().len();

    let clean = Session::without_cache(pipeline.clone())
        .threads(2)
        .run(&scenario)
        .expect("clean run");

    let plan = EngineFaultPlan::new(11).with(
        EngineFault::new(EngineFaultKind::JobPanic {
            fail_attempts: usize::MAX,
        })
        .on_job(0),
    );
    let faulted = Session::without_cache(pipeline)
        .threads(2)
        .retry_policy(RetryPolicy::default().with_max_attempts(3))
        .inject_engine_faults(plan)
        .run(&scenario)
        .expect("sweep must survive the bad job");

    assert_eq!(faulted.quarantined.len(), 1);
    let q = &faulted.quarantined[0];
    assert_eq!(q.index, 0);
    assert_eq!(q.attempts, 3);
    assert!(q.panicked);
    assert!(q.error.contains("injected engine fault"), "{}", q.error);
    assert_eq!(faulted.counters.jobs_quarantined, 1);
    assert_eq!(faulted.counters.retries, 2);
    assert_eq!(faulted.results.len(), n - 1, "every other row survives");
    assert_eq!(faulted.results[..], clean.results[1..]);
    assert!(
        faulted.sweep_table(&scenario).is_err(),
        "an incomplete grid must refuse to become a sweep table"
    );
}

#[test]
fn corrupt_artifact_is_quarantined_and_recomputed() {
    let pipeline = PipelineConfig::paper().build().expect("pipeline");
    let scenario = Scenario::severity_sweep("corrupt-rt", two_workloads(), small_vf(), 24);
    let dir = scratch_dir("corrupt");
    let n = 2 * small_vf().len();

    let cold = Session::with_cache_dir(pipeline.clone(), &dir)
        .expect("open cache")
        .run(&scenario)
        .expect("cold run");
    assert!(cold.is_complete());
    assert_eq!(cold.counters.artifacts_corrupt, 0, "cold cache is pristine");

    // Flip one bit in one persisted artifact (deterministically the
    // lexicographically first), emulating on-disk rot.
    let mut artifacts: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("cache dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            !name.starts_with("manifest-") && !name.contains(".tmp.") && !name.ends_with(".corrupt")
        })
        .collect();
    artifacts.sort();
    let victim = artifacts.first().expect("at least one artifact");
    let mut bytes = std::fs::read(victim).expect("read artifact");
    *bytes.last_mut().expect("non-empty artifact") ^= 0x01;
    std::fs::write(victim, &bytes).expect("write damage");

    // The warm probe's checksum catches the damage, quarantines the file
    // and recomputes that one job; the rows come out identical.
    let warm_session = Session::with_cache_dir(pipeline, &dir).expect("reopen cache");
    let warm = warm_session.run(&scenario).expect("warm run");
    assert_eq!(
        warm.counters.artifacts_corrupt, 1,
        "exactly one corrupt artifact"
    );
    assert_eq!(
        warm_session.cache().expect("cache").corrupt(),
        1,
        "cache-level corruption counter agrees"
    );
    assert_eq!(warm.results, cold.results);
    if json_works() {
        assert_eq!(warm.counters.jobs_cached, n - 1);
        assert_eq!(warm.counters.jobs_run, 1, "only the damaged job reruns");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_run_resumes_to_byte_identical_results() {
    quiet_injected_panics();
    let pipeline = PipelineConfig::paper().build().expect("pipeline");
    let scenario = Scenario::severity_sweep("resume-rt", two_workloads(), small_vf(), 24);
    let dir = scratch_dir("resume");
    let n = 2 * small_vf().len();

    let clean = Session::without_cache(pipeline.clone())
        .threads(2)
        .run(&scenario)
        .expect("uninterrupted reference run");

    // Emulate a mid-sweep crash: job 2 "dies" every attempt, so the
    // first run checkpoints every job except job 2.
    let plan = EngineFaultPlan::new(29).with(
        EngineFault::new(EngineFaultKind::JobPanic {
            fail_attempts: usize::MAX,
        })
        .on_job(2),
    );
    let interrupted = Session::with_cache_dir(pipeline.clone(), &dir)
        .expect("open cache")
        .retry_policy(RetryPolicy::no_retries())
        .inject_engine_faults(plan)
        .run(&scenario)
        .expect("interrupted run");
    assert_eq!(interrupted.quarantined.len(), 1);
    assert_eq!(interrupted.results.len(), n - 1);

    // A fresh, healthy session resumes: everything previously
    // checkpointed is restored, only the missing job is simulated, and
    // the rows are byte-identical to the uninterrupted run.
    let resumed = Session::with_cache_dir(pipeline, &dir)
        .expect("reopen cache")
        .resume(&scenario)
        .expect("resumed run");
    assert!(resumed.is_complete());
    assert_eq!(resumed.results, clean.results);
    assert_eq!(
        resumed.results_json().unwrap(),
        clean.results_json().unwrap(),
        "resume must reproduce the uninterrupted bytes"
    );
    if json_works() {
        assert_eq!(resumed.counters.jobs_resumed, n - 1);
        assert_eq!(resumed.counters.jobs_run, 1);
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_without_a_cache_is_rejected() {
    let pipeline = PipelineConfig::paper().build().expect("pipeline");
    let scenario = Scenario::severity_sweep("no-cache", two_workloads(), small_vf(), 24);
    let err = Session::without_cache(pipeline)
        .resume(&scenario)
        .expect_err("resume needs a cache");
    assert!(err.to_string().contains("artifact cache"), "{err}");
}
