//! Diagnostic: where do hotspots form for each test workload?
use common::units::GigaHertz;
use hotgauge::PipelineConfig;
use workloads::WorkloadSpec;
fn main() {
    let p = PipelineConfig::paper().build().unwrap();
    for name in [
        "h264ref", "GemsFDTD", "hmmer", "bzip2", "gamess", "gromacs", "omnetpp",
    ] {
        let spec = WorkloadSpec::by_name(name).unwrap();
        let out = p
            .run_fixed(
                &spec,
                GigaHertz::new(4.25),
                common::units::Volts::new(1.065),
                150,
            )
            .unwrap();
        let mut locs = std::collections::HashMap::new();
        for r in &out.records {
            if r.max_severity.value() > 0.8 {
                let unit = p
                    .floorplan()
                    .unit_at(r.hotspot_xy.0, r.hotspot_xy.1)
                    .map(|u| u.kind.name())
                    .unwrap_or("-");
                *locs.entry(unit).or_insert(0) += 1;
            }
        }
        println!("{name:<10} {locs:?}");
    }
}
