//! Core micro-architecture configuration.

use common::{Error, Result};
use serde::{Deserialize, Serialize};

/// Static parameters of the modelled out-of-order core.
///
/// Defaults ([`CoreConfig::skylake_like`]) approximate a Skylake-class
/// desktop core, matching the system HotGauge and the paper simulate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Maximum µops issued per cycle.
    pub issue_width: f64,
    /// Fetch width in instructions per cycle.
    pub fetch_width: f64,
    /// Re-order buffer capacity.
    pub rob_entries: f64,
    /// Unified reservation-station capacity.
    pub rs_entries: f64,
    /// Load/store queue capacity.
    pub lsq_entries: f64,
    /// Round-trip DRAM latency in nanoseconds (fixed in wall-clock time,
    /// which is what makes memory-bound workloads insensitive to
    /// frequency).
    pub mem_latency_ns: f64,
    /// L2 hit latency in cycles.
    pub l2_latency_cycles: f64,
    /// Memory-level parallelism: average overlapping DRAM requests.
    pub mlp: f64,
    /// Branch misprediction pipeline refill penalty in cycles.
    pub misprediction_penalty_cycles: f64,
    /// Wrong-path fetch expansion per misprediction (instructions).
    pub wrongpath_per_misprediction: f64,
}

impl CoreConfig {
    /// Skylake-class defaults.
    pub fn skylake_like() -> Self {
        Self {
            issue_width: 4.0,
            fetch_width: 4.0,
            rob_entries: 224.0,
            rs_entries: 97.0,
            lsq_entries: 128.0,
            mem_latency_ns: 70.0,
            l2_latency_cycles: 12.0,
            mlp: 4.0,
            misprediction_penalty_cycles: 15.0,
            wrongpath_per_misprediction: 8.0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if any parameter is non-positive
    /// or non-finite.
    pub fn validate(&self) -> Result<()> {
        let checks = [
            ("issue_width", self.issue_width),
            ("fetch_width", self.fetch_width),
            ("rob_entries", self.rob_entries),
            ("rs_entries", self.rs_entries),
            ("lsq_entries", self.lsq_entries),
            ("mem_latency_ns", self.mem_latency_ns),
            ("l2_latency_cycles", self.l2_latency_cycles),
            ("mlp", self.mlp),
            (
                "misprediction_penalty_cycles",
                self.misprediction_penalty_cycles,
            ),
            (
                "wrongpath_per_misprediction",
                self.wrongpath_per_misprediction,
            ),
        ];
        for (name, v) in checks {
            if !(v.is_finite() && v > 0.0) {
                return Err(Error::invalid_config(
                    "core",
                    format!("{name} must be positive and finite, got {v}"),
                ));
            }
        }
        Ok(())
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::skylake_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(CoreConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_nonpositive() {
        let mut c = CoreConfig::skylake_like();
        c.mlp = 0.0;
        assert!(c.validate().is_err());
        c.mlp = f64::NAN;
        assert!(c.validate().is_err());
    }
}
