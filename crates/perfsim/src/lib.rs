//! Analytical out-of-order core performance model.
//!
//! Substitute for the Sniper cycle-accurate simulator used by HotGauge
//! (see DESIGN.md): Boreas consumes *interval-level hardware telemetry*,
//! never instruction streams, so this crate models a Skylake-class
//! out-of-order core analytically. Every 80 µs step it converts a
//! workload's static characteristics ([`workloads::WorkloadSpec`]) and
//! instantaneous phase state ([`workloads::Activity`]) plus the current
//! voltage/frequency point into the **77 micro-architectural counters**
//! of [`counters::CounterId`]. Together with the thermal-sensor reading
//! appended by the telemetry crate these form the paper's 78 system
//! attributes (§IV-B).
//!
//! The performance model captures the first-order effects that matter to
//! the paper's experiments:
//!
//! * IPC = core CPI + memory CPI, where memory latency is fixed in
//!   nanoseconds — so raising the clock increases the *cycle* cost of
//!   misses and memory-bound workloads gain little from frequency;
//! * committed-instruction classes follow the workload mix; cache, TLB
//!   and branch events follow the per-kilo-instruction rates modulated by
//!   the phase engine;
//! * per-unit duty cycles track which functional units are switching,
//!   which the power model turns into spatial power density.
//!
//! # Examples
//!
//! ```
//! use boreas_perfsim::{CoreConfig, CoreModel};
//! use workloads::{PhaseEngine, WorkloadSpec};
//! use common::units::{GigaHertz, Volts};
//!
//! let spec = WorkloadSpec::by_name("bzip2")?;
//! let model = CoreModel::new(CoreConfig::skylake_like());
//! let mut phases = PhaseEngine::new(&spec, 1);
//! let counters = model.simulate_step(&spec, &phases.step(), GigaHertz::new(4.0), Volts::new(0.98));
//! assert!(counters.ipc() > 0.0);
//! # Ok::<(), common::Error>(())
//! ```

pub mod config;
pub mod core;
pub mod counters;

pub use config::CoreConfig;
pub use core::CoreModel;
pub use counters::{CounterId, IntervalCounters, NUM_COUNTERS};
