(function() {
    const implementors = Object.fromEntries([["boreas_common",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/iter/traits/collect/trait.FromIterator.html\" title=\"trait core::iter::traits::collect::FromIterator\">FromIterator</a>&lt;<a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.f64.html\">f64</a>&gt; for <a class=\"struct\" href=\"boreas_common/stats/struct.Accumulator.html\" title=\"struct boreas_common::stats::Accumulator\">Accumulator</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[462]}