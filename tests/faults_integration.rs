//! Cross-crate integration: fault injection vs graceful degradation.
//!
//! The headline robustness claim: under a fault mix that freezes every
//! sensor at ambient and zeroes the counter blocks, the plain ML05
//! controller mis-predicts "cold and idle", climbs the VF table and
//! records incursions — while the same controller wrapped in a
//! [`ResilientController`] detects the implausible telemetry, degrades
//! to the thermal fallback, trips the watchdog into the global-safe
//! point and finishes with zero incursions. Accounting always runs on
//! the true records; only the controller's observations are corrupted.

use boreas::prelude::*;
use common::units::Celsius;
use workloads::WorkloadSpec;

fn coarse_pipeline() -> Pipeline {
    let mut cfg = PipelineConfig::paper();
    cfg.grid = floorplan::GridSpec::new(16, 12).expect("valid grid");
    cfg.build().expect("config builds")
}

fn small_model(p: &Pipeline) -> (GbtModel, FeatureSet) {
    let train: Vec<WorkloadSpec> = ["gcc", "lbm", "povray", "sjeng"]
        .iter()
        .map(|n| WorkloadSpec::by_name(n).unwrap())
        .collect();
    let features = FeatureSet::from_names(&[
        "temperature_sensor_data",
        "total_cycles",
        "busy_cycles",
        "cdb_fpu_accesses",
        "cdb_alu_accesses",
        "voltage_v",
    ])
    .unwrap();
    let cfg = TrainingConfig {
        steps: 60,
        params: GbtParams::default().with_estimators(60),
        ..TrainingConfig::default()
    };
    let model = TrainSpec::new(p)
        .features(features.clone())
        .workloads(&train)
        .config(cfg)
        .fit()
        .unwrap()
        .model;
    (model, features)
}

/// Sensors latch ambient and counters read zero from step 12 onward.
fn frozen_telemetry_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with(
            Fault::new(FaultKind::StuckAt {
                value_c: Celsius::AMBIENT.value(),
            })
            .during(12, usize::MAX),
        )
        .with(Fault::new(FaultKind::CounterZero).during(12, usize::MAX))
}

/// A fallback so conservative it always steps down on plausible temps.
fn paranoid_fallback() -> ThermalController {
    ThermalController::from_thresholds(vec![Some(30.0); 13], 0.0)
}

#[test]
fn resilient_ml05_survives_faults_that_break_plain_ml05() {
    let p = coarse_pipeline();
    let (model, features) = small_model(&p);
    let spec = WorkloadSpec::by_name("gromacs").unwrap();
    let plan = frozen_telemetry_plan(7);
    plan.validate().unwrap();
    const STEPS: usize = 240;

    let mut plain = BoreasController::try_new(model.clone(), features.clone(), 0.05).unwrap();
    let mut plain_injector = FaultInjector::new(plan.clone());
    let out_plain = RunSpec::new(&p)
        .steps(STEPS)
        .filter(&mut plain_injector)
        .run(&spec, &mut plain)
        .unwrap();
    assert!(
        out_plain.incursions >= 1,
        "plain ML05 fed frozen-cold telemetry must climb into incursions \
         (got {} incursions, avg {:.2} GHz)",
        out_plain.incursions,
        out_plain.avg_frequency.value()
    );

    let ml = BoreasController::try_new(model, features, 0.05).unwrap();
    let mut resilient = ResilientController::new(ml, paranoid_fallback(), 0);
    let mut resilient_injector = FaultInjector::new(plan);
    let out_resilient = RunSpec::new(&p)
        .steps(STEPS)
        .filter(&mut resilient_injector)
        .run(&spec, &mut resilient)
        .unwrap();
    assert_eq!(
        out_resilient.incursions, 0,
        "resilient ML05 must stay incursion-free under the same faults \
         (peak severity {})",
        out_resilient.peak_severity
    );

    // The degradation ladder must actually have been exercised, and the
    // transitions must be queryable from the log.
    let log = resilient.log();
    assert_eq!(log.intervals(), STEPS / 12 - 1);
    assert!(
        log.anomalous_intervals() >= 3,
        "zeroed counters flag every faulty interval"
    );
    assert!(log.repaired_counter_blocks() > 0);
    assert_eq!(
        log.entered(ControlStage::Safe),
        1,
        "watchdog fires exactly once"
    );
    assert!(log.intervals_in(ControlStage::Safe) > 0);
    assert!(log.intervals_in(ControlStage::Fallback) > 0);
    assert!(log.require_clean().is_err());
    let first = &log.events()[0];
    assert_eq!(first.from, ControlStage::Primary);
    assert_eq!(first.to, ControlStage::Fallback);
}

#[test]
fn faulty_closed_loop_replays_bit_identically() {
    let p = coarse_pipeline();
    let (model, features) = small_model(&p);
    let spec = WorkloadSpec::by_name("bzip2").unwrap();
    let plan = FaultPlan::new(99)
        .with(Fault::new(FaultKind::Noise { std_c: 6.0 }).with_probability(0.3))
        .with(Fault::new(FaultKind::Dropped).with_probability(0.1));

    let run = || {
        let mut c = BoreasController::try_new(model.clone(), features.clone(), 0.05).unwrap();
        let mut injector = FaultInjector::new(plan.clone());
        RunSpec::new(&p)
            .steps(144)
            .filter(&mut injector)
            .run(&spec, &mut c)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.incursions, b.incursions);
    assert_eq!(a.final_idx, b.final_idx);
    assert_eq!(
        a.avg_frequency.value().to_bits(),
        b.avg_frequency.value().to_bits(),
        "same seed must replay the whole closed loop bit-identically"
    );
    assert_eq!(a.decisions, b.decisions);
}

#[test]
fn empty_plan_is_a_passthrough() {
    let p = coarse_pipeline();
    let spec = WorkloadSpec::by_name("gamess").unwrap();
    let thresholds = vec![Some(55.0); 13];
    let run_plain = |filtered: bool| {
        let mut c = ThermalController::from_thresholds(thresholds.clone(), 0.0);
        let mut spec_run = RunSpec::new(&p).steps(96);
        if filtered {
            let mut injector = FaultInjector::new(FaultPlan::new(1));
            spec_run.filter(&mut injector).run(&spec, &mut c).unwrap()
        } else {
            spec_run.run(&spec, &mut c).unwrap()
        }
    };
    let filtered = run_plain(true);
    let unfiltered = run_plain(false);
    assert_eq!(filtered.decisions, unfiltered.decisions);
    assert_eq!(
        filtered.avg_frequency.value().to_bits(),
        unfiltered.avg_frequency.value().to_bits()
    );
}
