/root/repo/target/debug/deps/boreas_baselines-691e002609bb161e.d: crates/baselines/src/lib.rs crates/baselines/src/cochran_reda.rs crates/baselines/src/kmeans.rs crates/baselines/src/linreg.rs crates/baselines/src/pca.rs

/root/repo/target/debug/deps/libboreas_baselines-691e002609bb161e.rlib: crates/baselines/src/lib.rs crates/baselines/src/cochran_reda.rs crates/baselines/src/kmeans.rs crates/baselines/src/linreg.rs crates/baselines/src/pca.rs

/root/repo/target/debug/deps/libboreas_baselines-691e002609bb161e.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cochran_reda.rs crates/baselines/src/kmeans.rs crates/baselines/src/linreg.rs crates/baselines/src/pca.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cochran_reda.rs:
crates/baselines/src/kmeans.rs:
crates/baselines/src/linreg.rs:
crates/baselines/src/pca.rs:
