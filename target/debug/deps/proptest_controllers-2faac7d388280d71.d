/root/repo/target/debug/deps/proptest_controllers-2faac7d388280d71.d: crates/boreas-core/tests/proptest_controllers.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_controllers-2faac7d388280d71.rmeta: crates/boreas-core/tests/proptest_controllers.rs Cargo.toml

crates/boreas-core/tests/proptest_controllers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
