/root/repo/target/debug/deps/serde-c0252a98a1340161.d: /tmp/vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-c0252a98a1340161.rlib: /tmp/vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-c0252a98a1340161.rmeta: /tmp/vendor/serde/src/lib.rs

/tmp/vendor/serde/src/lib.rs:
