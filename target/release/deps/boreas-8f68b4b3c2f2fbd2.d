/root/repo/target/release/deps/boreas-8f68b4b3c2f2fbd2.d: src/lib.rs

/root/repo/target/release/deps/libboreas-8f68b4b3c2f2fbd2.rlib: src/lib.rs

/root/repo/target/release/deps/libboreas-8f68b4b3c2f2fbd2.rmeta: src/lib.rs

src/lib.rs:
