//! Property tests for the framing layer: the push-based
//! [`FrameDecoder`] (the reactor backend's state machine) must recover
//! the original frame bodies from *any* split or coalescing of the wire
//! bytes, and must agree exactly with the blocking [`read_frame`] path
//! the thread backend uses.

use boreas_serve::protocol::{read_frame, write_frame, FrameDecoder, Incoming};
use proptest::prelude::*;

/// Encodes `bodies` as one contiguous wire byte string.
fn encode_stream(bodies: &[Vec<u8>]) -> Vec<u8> {
    let mut wire = Vec::new();
    for b in bodies {
        write_frame(&mut wire, b).expect("encode");
    }
    wire
}

/// Splits `wire` into chunks by cycling through `cuts` and feeds them to
/// a fresh decoder, collecting every decoded frame.
fn decode_chunked(wire: &[u8], cuts: &[usize]) -> Vec<Vec<u8>> {
    let mut dec = FrameDecoder::new();
    let mut out = Vec::new();
    let mut pos = 0;
    let mut i = 0;
    while pos < wire.len() {
        let step = if cuts.is_empty() {
            wire.len()
        } else {
            cuts[i % cuts.len()].max(1)
        };
        i += 1;
        let end = (pos + step).min(wire.len());
        dec.push(&wire[pos..end]);
        while let Some(body) = dec.next_frame().expect("legal stream") {
            out.push(body);
        }
        pos = end;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any chunking — byte-at-a-time, arbitrary splits, full
    /// coalescing — yields exactly the original bodies, in order.
    #[test]
    fn decoder_recovers_bodies_under_arbitrary_chunking(
        bodies in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 0..200usize),
            0..12usize,
        ),
        cuts in prop::collection::vec(1usize..97, 0..16usize),
    ) {
        let wire = encode_stream(&bodies);
        let decoded = decode_chunked(&wire, &cuts);
        prop_assert_eq!(decoded, bodies.clone());

        // Mid-message detection: a truncated trailing frame leaves the
        // decoder mid-message; a complete stream leaves it clean.
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        while dec.next_frame().expect("legal stream").is_some() {}
        prop_assert!(!dec.mid_message());
        if !wire.is_empty() {
            let mut cut = FrameDecoder::new();
            cut.push(&wire[..wire.len() - 1]);
            while cut.next_frame().expect("legal prefix").is_some() {}
            prop_assert!(cut.mid_message());
        }
    }

    /// The push decoder and the blocking reader agree on every stream.
    #[test]
    fn decoder_agrees_with_blocking_read_frame(
        bodies in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 0..150usize),
            1..8usize,
        ),
    ) {
        let wire = encode_stream(&bodies);

        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        let mut pushed = Vec::new();
        while let Some(body) = dec.next_frame().expect("legal stream") {
            pushed.push(body);
        }

        let mut cursor = std::io::Cursor::new(wire);
        let mut blocking = Vec::new();
        loop {
            match read_frame(&mut cursor).expect("legal stream") {
                Incoming::Frame(body) => blocking.push(body),
                Incoming::Closed => break,
                Incoming::Idle => unreachable!("cursors do not time out"),
            }
        }

        prop_assert_eq!(pushed, blocking);
    }
}

#[test]
fn oversized_prefix_is_a_framing_error_not_a_panic() {
    let mut dec = FrameDecoder::new();
    let huge = (boreas_serve::MAX_FRAME_BYTES as u32 + 1).to_be_bytes();
    dec.push(&huge);
    let err = dec.next_frame().expect_err("oversize must error");
    assert_eq!(err.protocol_kind(), Some(common::ProtocolKind::Framing));
}
