/root/repo/target/debug/deps/boreas_bench-528fcc796ef95206.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/boreas_bench-528fcc796ef95206: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
