//! The Hotspot-Severity metric (Fig. 1 of the paper).

use common::units::Celsius;
use common::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Parameters of the severity surface.
///
/// Defaults reproduce the HotGauge calibration the paper uses (see the
/// crate docs for the reconstruction).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeverityParams {
    /// Temperature at which severity starts accumulating.
    pub t_base: Celsius,
    /// Temperature that alone (zero MLTD) yields severity 1.0.
    pub t_crit: Celsius,
    /// Weight of MLTD relative to absolute temperature.
    pub mltd_weight: f64,
    /// Neighbourhood radius for the MLTD computation, mm.
    pub mltd_radius_mm: f64,
}

impl Default for SeverityParams {
    fn default() -> Self {
        Self {
            t_base: Celsius::new(45.0),
            t_crit: Celsius::new(115.0),
            mltd_weight: 0.875,
            mltd_radius_mm: 0.6,
        }
    }
}

impl SeverityParams {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if `t_crit <= t_base`, or the
    /// weight/radius are non-positive or non-finite.
    pub fn validate(&self) -> Result<()> {
        if !(self.t_base.is_finite() && self.t_crit.is_finite()) || self.t_crit <= self.t_base {
            return Err(Error::invalid_config(
                "severity",
                format!(
                    "need t_crit > t_base, got {} <= {}",
                    self.t_crit, self.t_base
                ),
            ));
        }
        if !(self.mltd_weight.is_finite() && self.mltd_weight > 0.0) {
            return Err(Error::invalid_config(
                "severity",
                "mltd_weight must be positive",
            ));
        }
        if !(self.mltd_radius_mm.is_finite() && self.mltd_radius_mm > 0.0) {
            return Err(Error::invalid_config(
                "severity",
                "mltd_radius_mm must be positive",
            ));
        }
        Ok(())
    }

    /// Evaluates the severity of one location.
    ///
    /// `mltd` is the maximum local temperature difference at that
    /// location (non-negative).
    pub fn evaluate(&self, temperature: Celsius, mltd: Celsius) -> Severity {
        Severity::new(self.evaluate_raw(temperature, mltd))
    }

    /// The unclamped affine severity value; exceeds 1.0 when the chip is
    /// past the danger point. Used for calibration and diagnostics — the
    /// reported metric is the clamped [`Severity`].
    pub fn evaluate_raw(&self, temperature: Celsius, mltd: Celsius) -> f64 {
        let effective = temperature.value() + self.mltd_weight * mltd.value().max(0.0);
        (effective - self.t_base.value()) / (self.t_crit.value() - self.t_base.value())
    }
}

/// A Hotspot-Severity value in `[0, 1]`.
///
/// 1.0 means the chip is in immediate danger of malfunction or permanent
/// damage (a *hotspot incursion* in the paper's terms); the raw affine
/// value is clamped into the unit interval, matching the paper's "values
/// that Hotspot-Severity can take range between 0 and 1".
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Severity(f64);

impl Severity {
    /// The maximum severity: an incursion.
    pub const ONE: Severity = Severity(1.0);

    /// Creates a severity from a raw value, clamping into `[0, 1]`.
    /// Non-finite input clamps to 1.0 (treat numerical blow-ups as
    /// dangerous rather than safe).
    pub fn new(raw: f64) -> Self {
        if raw.is_nan() {
            return Severity(1.0);
        }
        Severity(raw.clamp(0.0, 1.0))
    }

    /// The clamped value in `[0, 1]`.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// `true` when this severity constitutes a hotspot incursion.
    pub fn is_incursion(self) -> bool {
        self.0 >= 1.0
    }

    /// The larger of two severities.
    pub fn max(self, other: Severity) -> Severity {
        Severity(self.0.max(other.0))
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

impl From<Severity> for f64 {
    fn from(s: Severity) -> f64 {
        s.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sev(t: f64, mltd: f64) -> f64 {
        SeverityParams::default()
            .evaluate(Celsius::new(t), Celsius::new(mltd))
            .value()
    }

    #[test]
    fn paper_calibration_points() {
        // (1) uniformly hot chip: 115 C, no MLTD.
        assert!((sev(115.0, 0.0) - 1.0).abs() < 1e-12);
        // (2) advanced hotspot: 80 C with 40 C MLTD.
        assert!((sev(80.0, 40.0) - 1.0).abs() < 1e-12);
        // (3) in between: 95 C with 20 C MLTD is close to (but below) 1.
        let s3 = sev(95.0, 20.0);
        assert!(s3 > 0.9 && s3 < 1.0, "s3 = {s3}");
    }

    #[test]
    fn ambient_is_zero() {
        assert_eq!(sev(45.0, 0.0), 0.0);
        assert_eq!(sev(20.0, 0.0), 0.0, "below base clamps to zero");
    }

    #[test]
    fn monotone_in_temperature_and_mltd() {
        assert!(sev(90.0, 10.0) > sev(85.0, 10.0));
        assert!(sev(85.0, 20.0) > sev(85.0, 10.0));
    }

    #[test]
    fn clamps_to_unit_interval() {
        assert_eq!(sev(200.0, 50.0), 1.0);
        assert!(Severity::new(f64::NAN).is_incursion());
        assert_eq!(Severity::new(-3.0).value(), 0.0);
        assert_eq!(Severity::new(f64::INFINITY).value(), 1.0);
    }

    #[test]
    fn incursion_threshold() {
        assert!(Severity::ONE.is_incursion());
        assert!(!Severity::new(0.999).is_incursion());
    }

    #[test]
    fn negative_mltd_is_treated_as_zero() {
        assert_eq!(sev(90.0, -10.0), sev(90.0, 0.0));
    }

    #[test]
    fn validation() {
        assert!(SeverityParams::default().validate().is_ok());
        let p = SeverityParams {
            t_crit: Celsius::new(40.0),
            ..SeverityParams::default()
        };
        assert!(p.validate().is_err());
        let p = SeverityParams {
            mltd_weight: 0.0,
            ..SeverityParams::default()
        };
        assert!(p.validate().is_err());
        let p = SeverityParams {
            mltd_radius_mm: -1.0,
            ..SeverityParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn max_and_display() {
        let a = Severity::new(0.4);
        let b = Severity::new(0.7);
        assert_eq!(a.max(b), b);
        assert_eq!(format!("{b}"), "0.700");
    }
}
