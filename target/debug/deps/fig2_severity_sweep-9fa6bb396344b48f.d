/root/repo/target/debug/deps/fig2_severity_sweep-9fa6bb396344b48f.d: crates/bench/src/bin/fig2_severity_sweep.rs

/root/repo/target/debug/deps/fig2_severity_sweep-9fa6bb396344b48f: crates/bench/src/bin/fig2_severity_sweep.rs

crates/bench/src/bin/fig2_severity_sweep.rs:
