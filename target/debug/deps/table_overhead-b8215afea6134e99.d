/root/repo/target/debug/deps/table_overhead-b8215afea6134e99.d: crates/bench/src/bin/table_overhead.rs

/root/repo/target/debug/deps/table_overhead-b8215afea6134e99: crates/bench/src/bin/table_overhead.rs

crates/bench/src/bin/table_overhead.rs:
