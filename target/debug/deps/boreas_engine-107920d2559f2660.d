/root/repo/target/debug/deps/boreas_engine-107920d2559f2660.d: crates/engine/src/lib.rs crates/engine/src/cache.rs crates/engine/src/pool.rs crates/engine/src/scenario.rs crates/engine/src/session.rs crates/engine/src/supervisor.rs Cargo.toml

/root/repo/target/debug/deps/libboreas_engine-107920d2559f2660.rmeta: crates/engine/src/lib.rs crates/engine/src/cache.rs crates/engine/src/pool.rs crates/engine/src/scenario.rs crates/engine/src/session.rs crates/engine/src/supervisor.rs Cargo.toml

crates/engine/src/lib.rs:
crates/engine/src/cache.rs:
crates/engine/src/pool.rs:
crates/engine/src/scenario.rs:
crates/engine/src/session.rs:
crates/engine/src/supervisor.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/engine
# env-dep:CARGO_PKG_VERSION=0.1.0
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
