/root/repo/target/debug/deps/proptest_gbt-da6a65c360168a16.d: crates/gbt/tests/proptest_gbt.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_gbt-da6a65c360168a16.rmeta: crates/gbt/tests/proptest_gbt.rs Cargo.toml

crates/gbt/tests/proptest_gbt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
