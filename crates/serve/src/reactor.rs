//! The epoll-multiplexed serving backend: one I/O thread per reactor
//! drives every connection assigned to it through readiness events.
//!
//! # Why a reactor
//!
//! The thread-per-connection backend costs two OS threads per client;
//! at fleet scale ("one predictor ingests telemetry from whole racks")
//! the per-connection cost must be a few kilobytes of buffer, not two
//! stacks and two scheduler entities. This module multiplexes all
//! connections over `epoll_wait` on non-blocking sockets:
//!
//! * **inbound** — readiness on a socket triggers a drain-until-
//!   `EWOULDBLOCK` read into the connection's [`FrameDecoder`]; every
//!   complete frame routes to its shard worker exactly as in the
//!   thread backend (same `try_send` backpressure, same rejections);
//! * **outbound** — shard workers push encoded responses into the
//!   connection's [`Outbox`] and wake the reactor via a self-pipe; the
//!   reactor moves bytes into the write ring and registers `EPOLLOUT`
//!   only while the socket refuses bytes (write-interest toggling);
//! * **idle timeout** — a connection with no traffic for
//!   `idle_timeout` is reaped, so dead peers cannot pin buffers
//!   forever;
//! * **drain** — on shutdown the reactor stops reading, drops its
//!   queue senders, flushes every pending response (including those
//!   still being computed by workers: the outbox `Arc` count tracks
//!   in-flight jobs), then closes everything and exits.
//!
//! The syscall surface (`epoll_create1`, `epoll_ctl`, `epoll_wait`,
//! `pipe2`, `read`, `write`, `close`) is declared directly, the same
//! zero-dependency idiom as [`crate::signal`]. Linux only; selecting
//! [`crate::server::Backend::Epoll`] elsewhere fails at bind.

#![cfg(target_os = "linux")]

use std::collections::HashMap;
use std::net::TcpStream;
use std::os::raw::{c_int, c_void};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use common::{Error, Result, ServerKind};

use crate::conn::Conn;
use crate::server::{route_frame, Job, Metrics, ReplySink};

// ---------------------------------------------------------------- FFI

pub(crate) const EPOLLIN: u32 = 0x001;
pub(crate) const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

/// `EPOLL_CLOEXEC` == `O_CLOEXEC`; values for the Linux targets Rust
/// ships std on (x86_64, aarch64, riscv64, …).
const EPOLL_CLOEXEC: c_int = 0o2000000;
const O_CLOEXEC: c_int = 0o2000000;
const O_NONBLOCK: c_int = 0o4000;

/// The kernel's `struct epoll_event`. On x86_64 it is packed (a
/// 32-bit `events` directly followed by the 64-bit payload); on every
/// other architecture it has natural alignment.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn pipe2(pipefd: *mut c_int, flags: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

/// A raw fd closed on drop.
#[derive(Debug)]
struct OwnedFd(c_int);

impl Drop for OwnedFd {
    fn drop(&mut self) {
        // SAFETY: the fd was returned by a successful syscall and is
        // owned exclusively by this wrapper.
        unsafe { close(self.0) };
    }
}

/// Wakes a reactor's `epoll_wait` from another thread by writing one
/// byte into its self-pipe. Cheap to clone; safe to call from shard
/// workers, the accept loop and `request_shutdown`.
#[derive(Clone, Debug)]
pub(crate) struct Waker {
    pipe_write: Arc<OwnedFd>,
}

impl Waker {
    pub fn wake(&self) {
        let byte = 1u8;
        // SAFETY: writes one byte to an owned O_NONBLOCK pipe fd. A
        // full pipe (EAGAIN) means a wakeup is already pending — the
        // reactor will run regardless, so the result is ignored.
        unsafe {
            write(
                self.pipe_write.0,
                std::ptr::addr_of!(byte).cast::<c_void>(),
                1,
            );
        }
    }
}

/// Token identifying the self-pipe in epoll payloads (no socket fd can
/// collide with it).
const WAKE_TOKEN: u64 = u64::MAX;

/// How long one `epoll_wait` sleeps at most, bounding the latency of
/// shutdown checks, idle reaping and in-flight-drain detection.
const WAIT_MS: c_int = 50;

/// Per-`epoll_wait` event capacity.
const MAX_EVENTS: usize = 256;

fn syscall_err(what: &'static str) -> Error {
    Error::server(
        ServerKind::Reactor,
        what,
        std::io::Error::last_os_error().to_string(),
    )
}

/// One reactor's handle held by the server: the intake for freshly
/// accepted sockets, the waker, and the thread to join.
pub(crate) struct ReactorHandle {
    pub intake: Arc<Mutex<Vec<TcpStream>>>,
    pub waker: Waker,
    pub thread: JoinHandle<()>,
}

/// Spawns one reactor I/O thread.
///
/// # Errors
///
/// [`Error::Server`] when `epoll_create1`/`pipe2` or the thread spawn
/// fails.
pub(crate) fn spawn_reactor(
    index: usize,
    senders: Vec<SyncSender<Job>>,
    idle_timeout: Duration,
    metrics: Metrics,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
) -> Result<ReactorHandle> {
    // SAFETY: plain fd-creating syscalls; results are checked below and
    // ownership is wrapped immediately.
    let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
    if epfd < 0 {
        return Err(syscall_err("epoll_create1"));
    }
    let epfd = OwnedFd(epfd);
    let mut pipe_fds = [0 as c_int; 2];
    // SAFETY: pipe2 fills the two-element array on success.
    if unsafe { pipe2(pipe_fds.as_mut_ptr(), O_CLOEXEC | O_NONBLOCK) } < 0 {
        return Err(syscall_err("pipe2"));
    }
    let pipe_read = OwnedFd(pipe_fds[0]);
    let waker = Waker {
        pipe_write: Arc::new(OwnedFd(pipe_fds[1])),
    };
    ctl(&epfd, EPOLL_CTL_ADD, pipe_read.0, EPOLLIN, WAKE_TOKEN)?;

    let intake: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
    let thread = {
        let intake = intake.clone();
        let waker = waker.clone();
        thread::Builder::new()
            .name(format!("serve-reactor-{index}"))
            .spawn(move || {
                let mut reactor = Reactor {
                    epfd,
                    pipe_read,
                    waker,
                    conns: HashMap::new(),
                    senders,
                    intake,
                    idle_timeout,
                    metrics,
                    shutdown,
                    active,
                    draining: false,
                };
                reactor.run();
            })
            .map_err(|e| Error::server(ServerKind::Spawn, "spawn reactor", e.to_string()))?
    };
    Ok(ReactorHandle {
        intake,
        waker,
        thread,
    })
}

fn ctl(epfd: &OwnedFd, op: c_int, fd: RawFd, events: u32, data: u64) -> Result<()> {
    let mut ev = EpollEvent { events, data };
    // SAFETY: epfd and fd are live fds owned by this reactor; `ev` is a
    // valid epoll_event for the duration of the call (EPOLL_CTL_DEL
    // ignores it).
    if unsafe { epoll_ctl(epfd.0, op, fd, &mut ev) } < 0 {
        return Err(syscall_err("epoll_ctl"));
    }
    Ok(())
}

struct Reactor {
    epfd: OwnedFd,
    pipe_read: OwnedFd,
    /// Clone of the handle's waker, handed to every reply sink so
    /// shard workers can nudge this reactor after pushing a response.
    waker: Waker,
    conns: HashMap<RawFd, Conn>,
    /// Queue senders; cleared when the drain starts so shard workers
    /// can observe disconnection and exit.
    senders: Vec<SyncSender<Job>>,
    intake: Arc<Mutex<Vec<TcpStream>>>,
    idle_timeout: Duration,
    metrics: Metrics,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    draining: bool,
}

impl Reactor {
    fn run(&mut self) {
        let mut events = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        loop {
            // SAFETY: `events` outlives the call and MAX_EVENTS bounds
            // the kernel's writes.
            let n = unsafe {
                epoll_wait(
                    self.epfd.0,
                    events.as_mut_ptr(),
                    MAX_EVENTS as c_int,
                    WAIT_MS,
                )
            };
            if n < 0 {
                let interrupted =
                    std::io::Error::last_os_error().kind() == std::io::ErrorKind::Interrupted;
                if interrupted {
                    continue;
                }
                // The epoll fd itself failed: nothing to multiplex on.
                break;
            }
            self.metrics.epoll_wakeups.inc();
            if n > 0 {
                self.metrics.epoll_events.observe(f64::from(n));
            }
            for ev in &events[..n as usize] {
                // Copy out of the (possibly packed) struct by value.
                let (mask, token) = (ev.events, ev.data);
                if token == WAKE_TOKEN {
                    self.drain_wake_pipe();
                } else {
                    self.socket_event(token as RawFd, mask);
                }
            }
            self.admit_new_connections();
            self.pump_all();
            if self.shutdown.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain();
            }
            self.reap();
            if self.draining && self.conns.is_empty() {
                return;
            }
        }
    }

    fn drain_wake_pipe(&mut self) {
        let mut buf = [0u8; 64];
        // SAFETY: reads the owned non-blocking pipe fd into a stack
        // buffer; loops until EAGAIN (negative return).
        while unsafe {
            read(
                self.pipe_read.0,
                buf.as_mut_ptr().cast::<c_void>(),
                buf.len(),
            )
        } > 0
        {}
    }

    fn socket_event(&mut self, fd: RawFd, mask: u32) {
        let Some(conn) = self.conns.get_mut(&fd) else {
            return;
        };
        if mask & (EPOLLERR | EPOLLHUP) != 0 {
            self.close_conn(fd);
            return;
        }
        if mask & (EPOLLIN | EPOLLRDHUP) != 0 && conn.read_open {
            match conn.read_ready() {
                Ok(pass) => {
                    if pass.eof {
                        conn.read_open = false;
                    }
                    let frames = pass.frames;
                    let sink = ReplySink::reactor(conn.outbox.clone(), self.waker.clone());
                    for body in frames {
                        route_frame(&body, &self.senders, &self.metrics, &sink);
                    }
                }
                // Framing violation or hard I/O error: the byte stream
                // is unusable, same policy as the thread backend.
                Err(_) => {
                    self.close_conn(fd);
                    return;
                }
            }
        }
        if mask & EPOLLOUT != 0 {
            if let Some(conn) = self.conns.get_mut(&fd) {
                if conn.pump_out().is_err() {
                    self.close_conn(fd);
                }
            }
        }
    }

    fn admit_new_connections(&mut self) {
        let fresh = self
            .intake
            .lock()
            .map(|mut q| std::mem::take(&mut *q))
            .unwrap_or_default();
        for stream in fresh {
            if self.draining {
                // Late arrival during drain: close immediately; the
                // accept loop has already counted it active.
                self.active.fetch_sub(1, Ordering::SeqCst);
                self.metrics
                    .connections_active
                    .set(self.active.load(Ordering::SeqCst) as f64);
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                self.active.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            let fd = stream.as_raw_fd();
            let conn = Conn::new(stream);
            let interest = EPOLLIN | EPOLLRDHUP;
            if ctl(&self.epfd, EPOLL_CTL_ADD, fd, interest, fd as u64).is_err() {
                self.active.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            let mut conn = conn;
            conn.registered_interest = interest;
            self.conns.insert(fd, conn);
        }
    }

    /// Moves worker responses to sockets, toggles write interest, and
    /// closes connections that finished their lifecycle.
    fn pump_all(&mut self) {
        let mut dead = Vec::new();
        for (&fd, conn) in &mut self.conns {
            if conn.pump_out().is_err() {
                dead.push(fd);
                continue;
            }
            let mut interest = 0u32;
            if conn.read_open && !self.draining {
                interest |= EPOLLIN | EPOLLRDHUP;
            }
            if conn.wants_write() {
                interest |= EPOLLOUT;
            }
            if interest != conn.registered_interest {
                if ctl(&self.epfd, EPOLL_CTL_MOD, fd, interest, fd as u64).is_err() {
                    dead.push(fd);
                    continue;
                }
                conn.registered_interest = interest;
            }
            // Lifecycle end: the peer finished sending (or we are
            // draining), every response is flushed, and no queued shard
            // job can produce another one.
            let finished = !conn.read_open || self.draining;
            if finished && conn.flushed() && conn.no_inflight_jobs() {
                dead.push(fd);
            }
        }
        for fd in dead {
            self.close_conn(fd);
        }
    }

    fn begin_drain(&mut self) {
        self.draining = true;
        // Dropping the senders lets shard workers observe disconnection
        // once the accept loop's master clones are gone too.
        self.senders.clear();
        for conn in self.conns.values_mut() {
            conn.read_open = false;
        }
    }

    fn reap(&mut self) {
        if self.idle_timeout.is_zero() {
            return;
        }
        let now = std::time::Instant::now();
        let stale: Vec<RawFd> = self
            .conns
            .iter()
            .filter(|(_, c)| now.duration_since(c.last_activity) > self.idle_timeout)
            .map(|(&fd, _)| fd)
            .collect();
        for fd in stale {
            self.metrics.idle_reaped.inc();
            self.close_conn(fd);
        }
    }

    fn close_conn(&mut self, fd: RawFd) {
        if let Some(conn) = self.conns.remove(&fd) {
            let _ = ctl(&self.epfd, EPOLL_CTL_DEL, fd, 0, 0);
            drop(conn);
            self.active.fetch_sub(1, Ordering::SeqCst);
            self.metrics
                .connections_active
                .set(self.active.load(Ordering::SeqCst) as f64);
        }
    }
}
