/root/repo/target/debug/deps/proptest_faults-a321f5321fe44794.d: crates/faults/tests/proptest_faults.rs

/root/repo/target/debug/deps/proptest_faults-a321f5321fe44794: crates/faults/tests/proptest_faults.rs

crates/faults/tests/proptest_faults.rs:
