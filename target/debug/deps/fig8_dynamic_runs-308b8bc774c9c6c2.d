/root/repo/target/debug/deps/fig8_dynamic_runs-308b8bc774c9c6c2.d: crates/bench/src/bin/fig8_dynamic_runs.rs

/root/repo/target/debug/deps/fig8_dynamic_runs-308b8bc774c9c6c2: crates/bench/src/bin/fig8_dynamic_runs.rs

crates/bench/src/bin/fig8_dynamic_runs.rs:
