/root/repo/target/release/deps/debug_ml-8e7347d906036d78.d: crates/bench/src/bin/debug_ml.rs

/root/repo/target/release/deps/debug_ml-8e7347d906036d78: crates/bench/src/bin/debug_ml.rs

crates/bench/src/bin/debug_ml.rs:
