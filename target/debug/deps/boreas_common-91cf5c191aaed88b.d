/root/repo/target/debug/deps/boreas_common-91cf5c191aaed88b.d: crates/common/src/lib.rs crates/common/src/error.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/time.rs crates/common/src/units.rs

/root/repo/target/debug/deps/libboreas_common-91cf5c191aaed88b.rlib: crates/common/src/lib.rs crates/common/src/error.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/time.rs crates/common/src/units.rs

/root/repo/target/debug/deps/libboreas_common-91cf5c191aaed88b.rmeta: crates/common/src/lib.rs crates/common/src/error.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/time.rs crates/common/src/units.rs

crates/common/src/lib.rs:
crates/common/src/error.rs:
crates/common/src/rng.rs:
crates/common/src/stats.rs:
crates/common/src/time.rs:
crates/common/src/units.rs:
