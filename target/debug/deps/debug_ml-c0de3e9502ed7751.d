/root/repo/target/debug/deps/debug_ml-c0de3e9502ed7751.d: crates/bench/src/bin/debug_ml.rs

/root/repo/target/debug/deps/debug_ml-c0de3e9502ed7751: crates/bench/src/bin/debug_ml.rs

crates/bench/src/bin/debug_ml.rs:
