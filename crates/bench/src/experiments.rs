//! Shared experiment context: the paper pipeline, trained artefacts and
//! a small on-disk cache so the per-figure binaries don't retrain.

use boreas_core::{
    train_safe_thresholds, ClosedLoopRunner, CriticalTemps, SweepTable, TrainingConfig, VfTable,
};
use common::Result;
use gbt::{GbtModel, GbtParams};
use hotgauge::{Pipeline, PipelineConfig};
use std::path::PathBuf;
use telemetry::FeatureSet;
use workloads::WorkloadSpec;

/// Number of 80 µs steps per experiment run: 150 steps = 12 ms, the
/// paper's trace length (Fig. 8: "150 timesteps (12 milliseconds)").
pub const RUN_STEPS: usize = 150;

/// Closed-loop runs use a multiple of the 12-step decision interval.
pub const LOOP_STEPS: usize = 144;

/// Everything the figure/table binaries need.
pub struct Experiment {
    /// The paper-configured pipeline.
    pub pipeline: Pipeline,
    /// The paper VF table.
    pub vf: VfTable,
}

impl Experiment {
    /// Builds the paper configuration.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors (none with the defaults).
    pub fn paper() -> Result<Experiment> {
        Ok(Experiment {
            pipeline: PipelineConfig::paper().build()?,
            vf: VfTable::paper(),
        })
    }

    /// Cache directory for trained artefacts (under `target/`).
    fn cache_dir() -> PathBuf {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/boreas-cache");
        std::fs::create_dir_all(&dir).ok();
        dir
    }

    /// The Fig. 2 sweep of the full suite (cached).
    ///
    /// # Errors
    ///
    /// Propagates pipeline/serialisation errors.
    pub fn sweep_table(&self) -> Result<SweepTable> {
        let path = Self::cache_dir().join("sweep_table.json");
        if let Ok(json) = std::fs::read_to_string(&path) {
            if let Ok(table) = serde_json::from_str(&json) {
                return Ok(table);
            }
        }
        let table = SweepTable::measure(
            &self.pipeline,
            &WorkloadSpec::by_severity_rank(),
            &self.vf,
            RUN_STEPS,
        )?;
        if let Ok(json) = serde_json::to_string(&table) {
            std::fs::write(&path, json).ok();
        }
        Ok(table)
    }

    /// Critical temperatures of the *training* workloads on the default
    /// sensor (cached) — the thermal controllers' threshold source.
    ///
    /// # Errors
    ///
    /// Propagates pipeline/serialisation errors.
    pub fn critical_temps(&self) -> Result<CriticalTemps> {
        let path = Self::cache_dir().join("critical_temps.json");
        if let Ok(json) = std::fs::read_to_string(&path) {
            if let Ok(crit) = serde_json::from_str(&json) {
                return Ok(crit);
            }
        }
        let crit = CriticalTemps::measure(
            &self.pipeline,
            &WorkloadSpec::train_set(),
            &self.vf,
            telemetry::DEFAULT_SENSOR_INDEX,
            RUN_STEPS,
        )?;
        if let Ok(json) = serde_json::to_string(&crit) {
            std::fs::write(&path, json).ok();
        }
        Ok(crit)
    }

    /// Closed-loop-safe TH-00 thresholds: the measured critical
    /// temperatures, lowered until every *training* workload runs clean
    /// (cached). This is the paper's "trained on a threshold that is safe
    /// for all workloads in the training set".
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors.
    pub fn trained_thresholds(&self) -> Result<Vec<Option<f64>>> {
        let path = Self::cache_dir().join("trained_thresholds.json");
        if let Ok(json) = std::fs::read_to_string(&path) {
            if let Ok(t) = serde_json::from_str::<Vec<Option<f64>>>(&json) {
                if t.len() == self.vf.len() {
                    return Ok(t);
                }
            }
        }
        let crit = self.critical_temps()?;
        let runner = ClosedLoopRunner::new(&self.pipeline);
        let trained = train_safe_thresholds(
            &runner,
            &WorkloadSpec::train_set(),
            crit.global_thresholds(),
            LOOP_STEPS,
            60,
        )?;
        if let Ok(json) = serde_json::to_string(&trained) {
            std::fs::write(&path, json).ok();
        }
        Ok(trained)
    }

    /// The full-featured (78-attribute) model trained on the training
    /// set with Table II hyper-parameters (cached).
    ///
    /// # Errors
    ///
    /// Propagates pipeline/training errors.
    pub fn full_model(&self) -> Result<GbtModel> {
        self.cached_model("model_full.json", &FeatureSet::full(), GbtParams::default())
    }

    /// The deployed Boreas model: top-20 features by gain of the full
    /// model, retrained (cached). Returns the model and its feature set.
    ///
    /// # Errors
    ///
    /// Propagates pipeline/training errors.
    pub fn boreas_model(&self) -> Result<(GbtModel, FeatureSet)> {
        let full = self.full_model()?;
        let top: Vec<String> = full
            .feature_importance()
            .into_iter()
            .take(20)
            .map(|(n, _)| n)
            .collect();
        let refs: Vec<&str> = top.iter().map(String::as_str).collect();
        let features = FeatureSet::from_names(&refs)?;
        let model = self.cached_model("model_top20.json", &features, GbtParams::default())?;
        Ok((model, features))
    }

    fn cached_model(
        &self,
        file: &str,
        features: &FeatureSet,
        params: GbtParams,
    ) -> Result<GbtModel> {
        let path = Self::cache_dir().join(file);
        if let Ok(json) = std::fs::read_to_string(&path) {
            if let Ok(model) = GbtModel::from_json(&json) {
                if model.feature_names() == features.names().as_slice() {
                    return Ok(model);
                }
            }
        }
        let cfg = TrainingConfig {
            steps: RUN_STEPS,
            horizon: 12,
            sensor_idx: telemetry::MAX_SENSOR_BANK,
            params,
            label_cap: Some(2.0),
        };
        let (model, _) = boreas_core::train_boreas_model(
            &self.pipeline,
            &self.vf,
            &WorkloadSpec::train_set(),
            features,
            &cfg,
        )?;
        std::fs::write(&path, model.to_json()?).ok();
        Ok(model)
    }
}
