/root/repo/target/debug/deps/fig7_avg_frequency-92e5136e905eb92f.d: crates/bench/src/bin/fig7_avg_frequency.rs

/root/repo/target/debug/deps/fig7_avg_frequency-92e5136e905eb92f: crates/bench/src/bin/fig7_avg_frequency.rs

crates/bench/src/bin/fig7_avg_frequency.rs:
