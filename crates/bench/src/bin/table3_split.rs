//! Table III: the workload-exclusive train/test split, derived (as in
//! the paper) by sorting the suite by peak severity and assigning every
//! fourth workload to the test set.

use workloads::{SetKind, WorkloadSpec};

fn main() {
    println!("Table III: train/test workload split\n");
    let sorted = WorkloadSpec::by_severity_rank();
    println!("Suite sorted by peak Hotspot-Severity (ascending); every 4th -> test:");
    for w in &sorted {
        println!(
            "  rank {:>2}  {:<12} {}",
            w.severity_rank,
            w.name,
            if w.set == SetKind::Test {
                "TEST"
            } else {
                "train"
            }
        );
    }
    let train: Vec<_> = WorkloadSpec::train_set()
        .iter()
        .map(|w| w.name.clone())
        .collect();
    let test: Vec<_> = WorkloadSpec::test_set()
        .iter()
        .map(|w| w.name.clone())
        .collect();
    println!("\nTrain ({}): {}", train.len(), train.join(", "));
    println!("Test  ({}): {}", test.len(), test.join(", "));
    assert_eq!(train.len(), 20);
    assert_eq!(test.len(), 7);
}
