//! Quickstart: simulate one workload across the VF table and print its
//! peak Hotspot-Severity at each point — a single-workload slice of the
//! paper's Fig. 2.
//!
//! Run with: `cargo run --release --example quickstart [workload]`

use boreas::prelude::*;

fn main() -> Result<()> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gromacs".into());

    // The paper's simulation environment: Skylake-like core, calibrated
    // power model, RC thermal stack, 960 us sensor delay.
    let pipeline = PipelineConfig::paper().build()?;
    let spec = WorkloadSpec::by_name(&name)?;
    let vf = VfTable::paper();

    println!("workload: {spec}");
    println!(
        "{:>10} {:>9} {:>14} {:>12} {:>10}",
        "freq", "voltage", "peak severity", "peak temp", "mean IPC"
    );
    let mut oracle = None;
    for point in vf.points() {
        let out = pipeline.run_fixed(&spec, point.frequency, point.voltage, 150)?;
        let marker = if out.peak_severity.is_incursion() {
            "  << UNSAFE"
        } else {
            ""
        };
        if !out.peak_severity.is_incursion() {
            oracle = Some(point.frequency);
        }
        println!(
            "{:>10} {:>9} {:>14} {:>12} {:>10.2}{}",
            format!("{:.2} GHz", point.frequency.value()),
            format!("{:.3} V", point.voltage.value()),
            format!("{}", out.peak_severity),
            format!("{:.1} C", out.peak_temp.value()),
            out.mean_ipc,
            marker,
        );
    }
    match oracle {
        Some(f) => println!("\noracle frequency for {name}: {:.2} GHz", f.value()),
        None => println!("\nno safe operating point found (unexpected for the built-in suite)"),
    }
    Ok(())
}
