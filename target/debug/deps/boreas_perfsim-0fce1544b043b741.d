/root/repo/target/debug/deps/boreas_perfsim-0fce1544b043b741.d: crates/perfsim/src/lib.rs crates/perfsim/src/config.rs crates/perfsim/src/core.rs crates/perfsim/src/counters.rs

/root/repo/target/debug/deps/libboreas_perfsim-0fce1544b043b741.rlib: crates/perfsim/src/lib.rs crates/perfsim/src/config.rs crates/perfsim/src/core.rs crates/perfsim/src/counters.rs

/root/repo/target/debug/deps/libboreas_perfsim-0fce1544b043b741.rmeta: crates/perfsim/src/lib.rs crates/perfsim/src/config.rs crates/perfsim/src/core.rs crates/perfsim/src/counters.rs

crates/perfsim/src/lib.rs:
crates/perfsim/src/config.rs:
crates/perfsim/src/core.rs:
crates/perfsim/src/counters.rs:
