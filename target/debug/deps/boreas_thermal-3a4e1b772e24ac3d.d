/root/repo/target/debug/deps/boreas_thermal-3a4e1b772e24ac3d.d: crates/thermal/src/lib.rs crates/thermal/src/config.rs crates/thermal/src/sensor.rs crates/thermal/src/solver.rs

/root/repo/target/debug/deps/libboreas_thermal-3a4e1b772e24ac3d.rlib: crates/thermal/src/lib.rs crates/thermal/src/config.rs crates/thermal/src/sensor.rs crates/thermal/src/solver.rs

/root/repo/target/debug/deps/libboreas_thermal-3a4e1b772e24ac3d.rmeta: crates/thermal/src/lib.rs crates/thermal/src/config.rs crates/thermal/src/sensor.rs crates/thermal/src/solver.rs

crates/thermal/src/lib.rs:
crates/thermal/src/config.rs:
crates/thermal/src/sensor.rs:
crates/thermal/src/solver.rs:
