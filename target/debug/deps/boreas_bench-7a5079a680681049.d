/root/repo/target/debug/deps/boreas_bench-7a5079a680681049.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libboreas_bench-7a5079a680681049.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libboreas_bench-7a5079a680681049.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
