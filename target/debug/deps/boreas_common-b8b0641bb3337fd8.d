/root/repo/target/debug/deps/boreas_common-b8b0641bb3337fd8.d: crates/common/src/lib.rs crates/common/src/error.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/time.rs crates/common/src/units.rs

/root/repo/target/debug/deps/libboreas_common-b8b0641bb3337fd8.rmeta: crates/common/src/lib.rs crates/common/src/error.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/time.rs crates/common/src/units.rs

crates/common/src/lib.rs:
crates/common/src/error.rs:
crates/common/src/rng.rs:
crates/common/src/stats.rs:
crates/common/src/time.rs:
crates/common/src/units.rs:
