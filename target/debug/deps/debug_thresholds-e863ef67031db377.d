/root/repo/target/debug/deps/debug_thresholds-e863ef67031db377.d: crates/bench/src/bin/debug_thresholds.rs

/root/repo/target/debug/deps/debug_thresholds-e863ef67031db377: crates/bench/src/bin/debug_thresholds.rs

crates/bench/src/bin/debug_thresholds.rs:
