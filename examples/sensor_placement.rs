//! Derive thermal-sensor sites from observed hotspot locations with
//! k-means (the HotGauge methodology used in §III-A) and compare how well
//! differently-placed sensors track the true peak temperature.
//!
//! Run with: `cargo run --release --example sensor_placement`

use boreas::prelude::*;
use floorplan::placement::sensor_sites_from_hotspots;
use floorplan::SensorSite;

fn main() -> Result<()> {
    let pipeline = PipelineConfig::paper().build()?;

    // 1. Collect hotspot locations: run a few hot workloads at a high
    //    frequency and harvest the most-severe cell of every step.
    let mut hotspots: Vec<(f64, f64)> = Vec::new();
    for name in ["gromacs", "gamess", "bzip2", "mcf"] {
        let spec = WorkloadSpec::by_name(name)?;
        let out = pipeline.run_fixed(&spec, GigaHertz::new(4.75), Volts::new(1.275), 120)?;
        for r in &out.records {
            if r.max_severity.value() > 0.7 {
                hotspots.push(r.hotspot_xy);
            }
        }
    }
    println!("collected {} hotspot observations", hotspots.len());

    // 2. Cluster them into candidate sensor sites for several k.
    for k in [2, 4, 7] {
        let sites = sensor_sites_from_hotspots(&hotspots, k, 42)?;
        println!("\nk = {k}:");
        for s in &sites {
            let unit = pipeline
                .floorplan()
                .unit_at(s.x, s.y)
                .map(|u| u.kind.name())
                .unwrap_or("-");
            println!("  {} at ({:.2}, {:.2}) mm on `{unit}`", s.name, s.x, s.y);
        }
    }

    // 3. Compare tracking quality: data-driven sites vs the cool-corner
    //    sites the paper shows to be useless (Fig. 5).
    let derived = sensor_sites_from_hotspots(&hotspots, 2, 42)?;
    let bad = vec![
        SensorSite::new("corner00", 0.2, 0.2),
        SensorSite::new("corner01", 3.8, 0.2),
    ];
    let spec = WorkloadSpec::by_name("gromacs")?;
    for (label, sites) in [("k-means", derived), ("cool corners", bad)] {
        let mut run = pipeline.start_run_with_sensors(&spec, sites)?;
        let mut worst_gap: f64 = 0.0;
        for _ in 0..120 {
            let r = run.step(GigaHertz::new(4.75), Volts::new(1.275))?;
            let best = r
                .sensor_temps
                .iter()
                .map(|t| t.value())
                .fold(f64::NEG_INFINITY, f64::max);
            worst_gap = worst_gap.max(r.max_temp.value() - best);
        }
        println!("{label:>13}: worst gap between true peak and best sensor = {worst_gap:.1} C");
    }
    println!(
        "\n(the k-means sites sit on the hot execution cluster and track the peak far better)"
    );
    Ok(())
}
