//! Boreas: the paper's contribution — frequency controllers driven by
//! hotspot prediction, and the closed-loop evaluation harness.
//!
//! This crate implements every voltage/frequency selection algorithm the
//! paper evaluates:
//!
//! * [`OracleController`] (§III-B) — perfect knowledge upper bound;
//! * [`GlobalVfController`] (§III-C) — the single globally safe limit;
//! * [`ThermalController`] (§III-D, Fig. 4) — critical-temperature
//!   thresholds from sensor readings, with the TH-00/05/10 relaxations;
//! * [`BoreasController`] (§IV–V) — the GBT severity predictor over
//!   hardware telemetry, with the ML00/05/10 prediction guardbands;
//! * [`ResilientController`] — a wrapper adding telemetry validation,
//!   last-known-good substitution and graceful degradation (ML → TH
//!   fallback → watchdog-forced global-safe) under sensor faults;
//!
//! plus the online control loop and two builders sharing one idiom:
//!
//! * [`OnlineController`] — the push-based decision API: feed
//!   [`TelemetryFrame`]s in, get [`ControlDecision`]s out, one per
//!   960 µs interval. The serving daemon (`boreas-serve`) shards
//!   frames across these; the offline harness replays the simulator
//!   through the same type;
//! * [`RunSpec`] — the closed-loop harness executing any controller
//!   against the hotgauge pipeline at the paper's 960 µs decision
//!   cadence, accounting reliability (hotspot incursions) and
//!   performance (average frequency normalised to the 3.75 GHz
//!   baseline) — a thin replay driver over [`OnlineController`],
//!   bit-identical to the monolithic reference loop it replaced;
//! * [`TrainSpec`] — the offline Fig. 3 flow: telemetry extraction over
//!   the training workloads × VF table, multi-threaded histogram GBT
//!   training ([`TrainSpec::fit`]) and TH-00 threshold training
//!   ([`TrainSpec::fit_thresholds`]).
//!
//! Attach an [`Obs`] bundle via [`RunSpec::obs`] to stream metrics,
//! span timings and per-decision flight events out of a run; the obs
//! handle types ([`Obs`], [`Registry`], [`Tracer`], [`FlightRecorder`],
//! [`FlightEvent`]) are re-exported here so controller code needs no
//! direct `boreas-obs` dependency.

pub mod controller;
pub mod critical;
pub mod online;
pub mod oracle;
pub mod resilient;
pub mod runner;
pub mod training;
pub mod vf;

pub use controller::{
    BoreasController, ControlContext, ControlDiagnostics, Controller, Decision, GlobalVfController,
    ThermalController,
};
pub use critical::CriticalTemps;
pub use obs::{
    Counter, FlightEvent, FlightRecorder, Gauge, Histogram, Obs, Registry, RunLog, SpanReport,
    Tracer,
};
pub use online::{ControlDecision, OnlineController, TelemetryFrame};
pub use oracle::{oracle_frequencies, OracleController, SweepTable};
pub use resilient::{
    ControlStage, DegradationEvent, DegradationLog, ResilienceConfig, ResilientController,
};
pub use runner::{ClosedLoopOutcome, ObservationFilter, PassthroughFilter, RunSpec};
pub use training::{TrainReport, TrainSpec, TrainingConfig};
pub use vf::{VfPoint, VfTable};
