//! Power-model configuration.

use common::{Error, Result};
use floorplan::UnitKind;
use serde::{Deserialize, Serialize};

/// Configuration of the unit-level power model.
///
/// `scale` is the single suite-wide calibration knob: it is chosen (see
/// the calibration test in the hotgauge crate) so that the globally safe
/// frequency of Fig. 2 lands at 3.75 GHz.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerConfig {
    /// Global dynamic-power calibration multiplier.
    pub scale: f64,
    /// Reference voltage for the V² scaling.
    pub v_ref: f64,
    /// Reference frequency (GHz) for the linear-f scaling.
    pub f_ref_ghz: f64,
    /// Fraction of peak power drawn at zero duty (imperfect clock gating).
    pub idle_fraction: f64,
    /// Leakage at the reference temperature as a fraction of unit peak.
    pub leakage_fraction: f64,
    /// Reference temperature for leakage, °C.
    pub leakage_t_ref_c: f64,
    /// Exponential temperature scale of leakage, K per e-fold.
    pub leakage_theta_k: f64,
    /// Uniform uncore background power over the whole die, W.
    pub uncore_background_w: f64,
}

impl Default for PowerConfig {
    fn default() -> Self {
        Self {
            scale: 1.0,
            v_ref: 1.0,
            f_ref_ghz: 4.0,
            idle_fraction: 0.12,
            leakage_fraction: 0.08,
            leakage_t_ref_c: 45.0,
            leakage_theta_k: 45.0,
            uncore_background_w: 1.5,
        }
    }
}

impl PowerConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for out-of-range parameters.
    pub fn validate(&self) -> Result<()> {
        let positive = [
            ("scale", self.scale),
            ("v_ref", self.v_ref),
            ("f_ref_ghz", self.f_ref_ghz),
            ("leakage_theta_k", self.leakage_theta_k),
        ];
        for (name, v) in positive {
            if !(v.is_finite() && v > 0.0) {
                return Err(Error::invalid_config(
                    "power",
                    format!("{name} must be positive and finite, got {v}"),
                ));
            }
        }
        let fractions = [
            ("idle_fraction", self.idle_fraction),
            ("leakage_fraction", self.leakage_fraction),
        ];
        for (name, v) in fractions {
            if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
                return Err(Error::invalid_config(
                    "power",
                    format!("{name} must be in [0, 1], got {v}"),
                ));
            }
        }
        if !(self.uncore_background_w.is_finite() && self.uncore_background_w >= 0.0) {
            return Err(Error::invalid_config(
                "power",
                "uncore_background_w must be >= 0",
            ));
        }
        if !self.leakage_t_ref_c.is_finite() {
            return Err(Error::invalid_config(
                "power",
                "leakage_t_ref_c must be finite",
            ));
        }
        Ok(())
    }
}

/// Peak dynamic power (W) of each unit at the reference operating point
/// (`v_ref`, `f_ref`), full duty, unit intensity.
///
/// Random-logic execution blocks dominate, matching the 7 nm power-density
/// premise of the paper: the FPU is the single hottest block.
pub fn peak_power_w(kind: UnitKind) -> f64 {
    match kind {
        UnitKind::Ifu => 1.6,
        UnitKind::ICache => 1.6,
        UnitKind::Itlb => 0.5,
        UnitKind::Bpu => 1.3,
        UnitKind::Decode => 1.8,
        UnitKind::Rename => 1.4,
        UnitKind::Rob => 2.0,
        UnitKind::Scheduler => 2.6,
        UnitKind::IntRf => 1.6,
        UnitKind::FpRf => 1.6,
        UnitKind::Alu => 3.0,
        UnitKind::Mul => 1.8,
        UnitKind::Fpu => 5.0,
        UnitKind::Cdb => 1.2,
        UnitKind::Lsu => 3.0,
        UnitKind::DCache => 2.4,
        UnitKind::Dtlb => 0.5,
        UnitKind::L2 => 2.2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(PowerConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_bad_fractions() {
        let c = PowerConfig {
            idle_fraction: 1.5,
            ..PowerConfig::default()
        };
        assert!(c.validate().is_err());
        let c = PowerConfig {
            leakage_fraction: -0.1,
            ..PowerConfig::default()
        };
        assert!(c.validate().is_err());
        let c = PowerConfig {
            scale: 0.0,
            ..PowerConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn fpu_is_the_hottest_block() {
        for kind in UnitKind::ALL {
            if kind != UnitKind::Fpu {
                assert!(peak_power_w(UnitKind::Fpu) > peak_power_w(kind));
            }
        }
    }

    #[test]
    fn all_peaks_positive() {
        for kind in UnitKind::ALL {
            assert!(peak_power_w(kind) > 0.0);
        }
    }
}
