/root/repo/target/debug/deps/boreas_common-48c4b155820f5e70.d: crates/common/src/lib.rs crates/common/src/error.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/time.rs crates/common/src/units.rs

/root/repo/target/debug/deps/boreas_common-48c4b155820f5e70: crates/common/src/lib.rs crates/common/src/error.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/time.rs crates/common/src/units.rs

crates/common/src/lib.rs:
crates/common/src/error.rs:
crates/common/src/rng.rs:
crates/common/src/stats.rs:
crates/common/src/time.rs:
crates/common/src/units.rs:
