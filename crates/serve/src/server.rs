//! The serving daemon core: two I/O backends in front of shared shard
//! workers, backpressure, clean drain.
//!
//! # Architecture
//!
//! ```text
//!                      ┌── Backend::Threads ───────────────┐
//!  accept thread ──────┤   reader + writer thread per conn │
//!       │              └── Backend::Epoll ─────────────────┤
//!       │                  N reactor threads, epoll_wait   │
//!       │                            │ Job (decoded frame) │
//!       │                            ▼                     │
//!       │                   shard worker 0..N  ──Response──┘
//!       └── cap check, non-blocking poll
//! ```
//!
//! * One **accept thread** polls a non-blocking listener so it can
//!   observe the shutdown flag; it enforces the connection cap and
//!   never does per-frame work, so a full shard queue cannot stall new
//!   connections.
//! * **Backend-specific I/O** turns socket bytes into decoded frames
//!   and carries responses back:
//!   [`Backend::Threads`] gives each connection a reader thread and a
//!   writer thread (simple, 2 threads per client);
//!   [`Backend::Epoll`] multiplexes every connection over
//!   `epoll_wait` on a few reactor threads ([`crate::reactor`]) — the
//!   scalable path.
//! * **Backend-generic routing** ([`route_frame`]) is byte-identical
//!   across backends: decode, pick worker `shard % N`, `try_send` with
//!   bounded-queue backpressure, answer `Rejected` on a full queue or
//!   a malformed body.
//! * **Shard workers** own the control loops: worker `w` holds one
//!   [`OnlineController`] per die id `d` with `d % workers == w`, so
//!   each die's frames are processed in order by exactly one thread.
//!   Workers drain their queue in *tick batches*: every frame available
//!   at wake-up is processed before sleeping again, and each completed
//!   interval's GBT inference runs both decision candidates through one
//!   [`gbt::FlatModel::predict_batch`] pass (see
//!   `BoreasController::predict_candidates`).
//! * **Backpressure**: shard queues are bounded
//!   ([`ServeConfigBuilder::queue_depth`]). A full queue rejects the
//!   frame immediately — counted in `boreas_serve_rejected_total` and
//!   answered with [`Response::Rejected`] — and never blocks the
//!   reader or accept loop.
//! * **Drain**: [`Server::request_shutdown`] stops the accept loop,
//!   the readers and the reactors' ingest; queue senders drop, workers
//!   finish every frame already queued, pending responses flush, then
//!   [`Server::join`] returns. Nothing accepted is thrown away.
//!
//! Because routing, the workers and the codec are shared, the two
//! backends serve **byte-identical decision streams** for the same
//! per-die frame sequences — pinned by
//! `tests/backend_equivalence.rs`.

use boreas_core::{Controller, OnlineController, VfTable};
use common::{Error, Result, ServerKind};
use engine::ControllerSpec;
use obs::{Counter, Gauge, Histogram, Registry};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::protocol::{self, Incoming, Response};

/// How often polling loops re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(50);

/// Upper bound on one worker tick's batch, so a hot shard cannot
/// starve the response path indefinitely.
const MAX_TICK_BATCH: usize = 256;

/// Which I/O backend carries bytes between sockets and shard workers.
///
/// Both backends route through the same workers and codec and serve
/// byte-identical decision streams; they differ only in cost per
/// connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Two OS threads per connection (a blocking reader and writer).
    /// Simple and portable; caps out at a few hundred connections.
    Threads,
    /// A few reactor threads multiplex all connections via
    /// `epoll_wait` (Linux only). The scalable path.
    Epoll,
}

impl Backend {
    /// The flag spelling, as accepted by `--backend`.
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Threads => "threads",
            Backend::Epoll => "epoll",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Backend {
    type Err = Error;

    fn from_str(s: &str) -> Result<Backend> {
        match s {
            "threads" => Ok(Backend::Threads),
            "epoll" => Ok(Backend::Epoll),
            other => Err(Error::invalid_config(
                "backend",
                format!("unknown backend `{other}` (expected `threads` or `epoll`)"),
            )),
        }
    }
}

/// Validated configuration for [`Server::bind`].
///
/// Constructed through [`ServeConfig::builder`], which rejects
/// out-of-range values (zero shards, zero queue depth, …) at build
/// time instead of panicking — or silently clamping — at runtime.
/// [`ServeConfig::default`] is the paper setup (TH-00 flat-70 °C
/// controller over the paper VF table) for tests and examples.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    pub(crate) backend: Backend,
    pub(crate) shards: usize,
    pub(crate) queue_depth: usize,
    pub(crate) io_threads: usize,
    pub(crate) max_connections: usize,
    pub(crate) idle_timeout: Duration,
    pub(crate) controller: ControllerSpec,
    pub(crate) vf: VfTable,
    pub(crate) start_idx: usize,
    pub(crate) sensor_idx: usize,
    pub(crate) registry: Registry,
}

impl ServeConfig {
    /// A builder seeded with the paper defaults: thread backend, 2
    /// shard workers, queue depth 64, 1 reactor thread, 1024-connection
    /// cap, 60 s idle timeout, the TH-00 flat-70 °C controller on the
    /// paper VF table, the 3.75 GHz baseline start index and the
    /// bank-maximum sensor.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder::new()
    }

    /// The selected I/O backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Shard worker threads.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Bounded per-shard queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// Reactor I/O threads (epoll backend only).
    pub fn io_threads(&self) -> usize {
        self.io_threads
    }

    /// Concurrent-connection cap enforced at accept.
    pub fn max_connections(&self) -> usize {
        self.max_connections
    }

    /// Idle timeout after which a silent connection is reaped.
    pub fn idle_timeout(&self) -> Duration {
        self.idle_timeout
    }
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig::builder()
            .build()
            .expect("paper-default ServeConfig is valid")
    }
}

/// Builder for [`ServeConfig`]; see [`ServeConfig::builder`].
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    backend: Backend,
    shards: usize,
    queue_depth: usize,
    io_threads: usize,
    max_connections: usize,
    idle_timeout: Duration,
    controller: Option<ControllerSpec>,
    vf: Option<VfTable>,
    start_idx: Option<usize>,
    sensor_idx: usize,
    registry: Registry,
}

impl Default for ServeConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeConfigBuilder {
    fn new() -> ServeConfigBuilder {
        ServeConfigBuilder {
            backend: Backend::Threads,
            shards: 2,
            queue_depth: 64,
            io_threads: 1,
            max_connections: 1024,
            idle_timeout: Duration::from_secs(60),
            controller: None,
            vf: None,
            start_idx: None,
            sensor_idx: telemetry::MAX_SENSOR_BANK,
            registry: Registry::new(),
        }
    }

    /// Selects the I/O backend.
    #[must_use]
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the shard worker count (≥ 1).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the per-shard bounded queue depth (≥ 1).
    #[must_use]
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Sets the reactor thread count for [`Backend::Epoll`] (≥ 1);
    /// connections are spread round-robin across reactors.
    #[must_use]
    pub fn io_threads(mut self, n: usize) -> Self {
        self.io_threads = n;
        self
    }

    /// Sets the concurrent-connection cap (≥ 1); connections beyond it
    /// are closed at accept.
    #[must_use]
    pub fn max_connections(mut self, n: usize) -> Self {
        self.max_connections = n;
        self
    }

    /// Sets the idle timeout (> 0) after which a connection with no
    /// traffic is reaped.
    #[must_use]
    pub fn idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = timeout;
        self
    }

    /// Sets the recipe for every per-die controller (default: the
    /// TH-00 flat-70 °C thermal controller).
    #[must_use]
    pub fn controller(mut self, spec: ControllerSpec) -> Self {
        self.controller = Some(spec);
        self
    }

    /// Sets the legal operating points (default: the paper VF table).
    #[must_use]
    pub fn vf(mut self, vf: VfTable) -> Self {
        self.vf = Some(vf);
        self
    }

    /// Sets the VF index each new die's loop starts at (default: the
    /// 3.75 GHz baseline, clamped to the table).
    #[must_use]
    pub fn start_idx(mut self, idx: usize) -> Self {
        self.start_idx = Some(idx);
        self
    }

    /// Sets the sensor selector for every loop.
    #[must_use]
    pub fn sensor_idx(mut self, idx: usize) -> Self {
        self.sensor_idx = idx;
        self
    }

    /// Uses `registry` for the server's metrics; pass a shared registry
    /// to expose it over HTTP.
    #[must_use]
    pub fn registry(mut self, registry: Registry) -> Self {
        self.registry = registry;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for zero shards, zero queue depth,
    /// zero reactor threads, a zero connection cap, a zero idle
    /// timeout, an empty VF table or an out-of-range start index.
    pub fn build(self) -> Result<ServeConfig> {
        if self.shards == 0 {
            return Err(Error::invalid_config("shards", "must be at least 1"));
        }
        if self.queue_depth == 0 {
            return Err(Error::invalid_config("queue_depth", "must be at least 1"));
        }
        if self.io_threads == 0 {
            return Err(Error::invalid_config("io_threads", "must be at least 1"));
        }
        if self.max_connections == 0 {
            return Err(Error::invalid_config(
                "max_connections",
                "must be at least 1",
            ));
        }
        if self.idle_timeout.is_zero() {
            return Err(Error::invalid_config(
                "idle_timeout",
                "must be positive (there is no `never reap` mode)",
            ));
        }
        let vf = self.vf.unwrap_or_else(VfTable::paper);
        if vf.is_empty() {
            return Err(Error::invalid_config("vf", "table must not be empty"));
        }
        let start_idx = self
            .start_idx
            .unwrap_or_else(|| VfTable::BASELINE_INDEX.min(vf.len() - 1));
        if start_idx >= vf.len() {
            return Err(Error::invalid_config(
                "start_idx",
                format!("index {start_idx} outside the {}-point VF table", vf.len()),
            ));
        }
        let controller = self
            .controller
            .unwrap_or_else(|| ControllerSpec::thermal(vec![Some(70.0); vf.len()], 0.0));
        Ok(ServeConfig {
            backend: self.backend,
            shards: self.shards,
            queue_depth: self.queue_depth,
            io_threads: self.io_threads,
            max_connections: self.max_connections,
            idle_timeout: self.idle_timeout,
            controller,
            vf,
            start_idx,
            sensor_idx: self.sensor_idx,
            registry: self.registry,
        })
    }
}

/// The server's metric handles (all registered up front so `/metrics`
/// shows zeroes rather than gaps before traffic arrives).
#[derive(Clone)]
pub(crate) struct Metrics {
    pub frames: Counter,
    pub decisions: Counter,
    pub rejected: Counter,
    pub connections: Counter,
    pub connections_active: Gauge,
    pub connections_rejected: Counter,
    pub idle_reaped: Counter,
    pub shards: Gauge,
    pub backend: Gauge,
    pub batch: Histogram,
    pub epoll_wakeups: Counter,
    pub epoll_events: Histogram,
}

impl Metrics {
    fn new(registry: &Registry) -> Self {
        Metrics {
            frames: registry.counter(
                "boreas_serve_frames_total",
                "Telemetry frames processed by shard workers",
            ),
            decisions: registry.counter(
                "boreas_serve_decisions_total",
                "Control decisions issued to clients",
            ),
            rejected: registry.counter(
                "boreas_serve_rejected_total",
                "Frames rejected (backpressure or malformed)",
            ),
            connections: registry.counter(
                "boreas_serve_connections_total",
                "Client connections accepted",
            ),
            connections_active: registry.gauge(
                "boreas_serve_connections",
                "Client connections currently open",
            ),
            connections_rejected: registry.counter(
                "boreas_serve_connections_rejected_total",
                "Connections closed at accept by the connection cap",
            ),
            idle_reaped: registry.counter(
                "boreas_serve_idle_reaped_total",
                "Connections reaped by the idle timeout",
            ),
            shards: registry.gauge("boreas_serve_shards", "Shard worker threads"),
            backend: registry.gauge(
                "boreas_serve_backend",
                "Active I/O backend (0 = threads, 1 = epoll)",
            ),
            batch: registry.histogram(
                "boreas_serve_batch_frames",
                "Frames drained per worker tick",
                &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0],
            ),
            epoll_wakeups: registry.counter(
                "boreas_serve_epoll_wakeups_total",
                "Reactor epoll_wait returns (epoll backend)",
            ),
            epoll_events: registry.histogram(
                "boreas_serve_epoll_events",
                "Readiness events delivered per epoll_wait return",
                &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0],
            ),
        }
    }
}

/// One unit of shard work: a decoded frame plus the way back to the
/// client that sent it.
pub(crate) struct Job {
    pub frame: boreas_core::TelemetryFrame,
    pub reply: ReplySink,
}

/// The backend-specific way a response reaches its connection.
#[derive(Clone)]
pub(crate) enum ReplySink {
    /// Thread backend: send to the connection's writer thread, which
    /// encodes and writes.
    Channel(Sender<Response>),
    /// Epoll backend: encode here (worker side), push the wire bytes
    /// into the connection's outbox and wake its reactor.
    #[cfg(target_os = "linux")]
    Reactor {
        outbox: Arc<crate::conn::Outbox>,
        waker: crate::reactor::Waker,
    },
}

impl ReplySink {
    #[cfg(target_os = "linux")]
    pub fn reactor(outbox: Arc<crate::conn::Outbox>, waker: crate::reactor::Waker) -> ReplySink {
        ReplySink::Reactor { outbox, waker }
    }

    /// Delivers one response; best-effort (a gone client drops it,
    /// like the thread backend's writer).
    pub fn send(&self, resp: Response) {
        match self {
            ReplySink::Channel(tx) => {
                let _ = tx.send(resp);
            }
            #[cfg(target_os = "linux")]
            ReplySink::Reactor { outbox, waker } => {
                let Ok(body) = protocol::encode_response(&resp) else {
                    return;
                };
                let mut wire = Vec::with_capacity(4 + body.len());
                wire.extend_from_slice(&(body.len() as u32).to_be_bytes());
                wire.extend_from_slice(&body);
                outbox.push(wire);
                waker.wake();
            }
        }
    }
}

/// Backend-generic frame routing: decode, pick the shard worker,
/// `try_send` with backpressure, answer rejections. Byte-identical
/// behavior for both backends.
pub(crate) fn route_frame(
    body: &[u8],
    senders: &[SyncSender<Job>],
    metrics: &Metrics,
    sink: &ReplySink,
) {
    match protocol::decode_frame(body) {
        Ok(frame) => {
            let worker = (frame.shard as usize) % senders.len();
            let (shard, seq) = (frame.shard, frame.seq);
            let job = Job {
                frame,
                reply: sink.clone(),
            };
            match senders[worker].try_send(job) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    metrics.rejected.inc();
                    sink.send(Response::Rejected {
                        shard,
                        seq,
                        reason: "shard queue full".to_string(),
                    });
                }
                Err(TrySendError::Disconnected(_)) => {
                    metrics.rejected.inc();
                    sink.send(Response::Rejected {
                        shard,
                        seq,
                        reason: "server draining".to_string(),
                    });
                }
            }
        }
        Err(e) => {
            metrics.rejected.inc();
            sink.send(Response::Rejected {
                shard: 0,
                seq: 0,
                reason: e.to_string(),
            });
        }
    }
}

/// A running serving daemon. See the [module docs](self) for the
/// thread/queue layout.
pub struct Server {
    local_addr: SocketAddr,
    backend: Backend,
    shutdown: Arc<AtomicBool>,
    active_connections: Arc<AtomicUsize>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    #[cfg(target_os = "linux")]
    reactors: Vec<crate::reactor::ReactorHandle>,
}

/// Where the accept loop hands a fresh connection.
enum Dispatch {
    Threads,
    #[cfg(target_os = "linux")]
    Reactors {
        intakes: Vec<(Arc<std::sync::Mutex<Vec<TcpStream>>>, crate::reactor::Waker)>,
        next: usize,
    },
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:7070"`, or port 0 for an
    /// ephemeral port) and starts the accept loop, the configured I/O
    /// backend and the shard workers.
    ///
    /// # Errors
    ///
    /// [`Error::Server`] when the bind fails or the epoll backend is
    /// requested on a non-Linux target, or whatever
    /// [`ControllerSpec::build`] reports for an invalid controller
    /// recipe (the recipe is validated once up front, not per die).
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> Result<Server> {
        // Fail fast on an unbuildable controller instead of per shard.
        config.controller.build()?;
        #[cfg(not(target_os = "linux"))]
        if config.backend == Backend::Epoll {
            return Err(Error::server(
                ServerKind::Reactor,
                "bind",
                "the epoll backend requires Linux; use Backend::Threads".to_string(),
            ));
        }
        let listener = TcpListener::bind(addr)
            .map_err(|e| Error::server(ServerKind::Bind, "bind", e.to_string()))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| Error::server(ServerKind::Bind, "local_addr", e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| Error::server(ServerKind::Bind, "set_nonblocking", e.to_string()))?;

        let metrics = Metrics::new(&config.registry);
        metrics.shards.set(config.shards as f64);
        metrics.backend.set(match config.backend {
            Backend::Threads => 0.0,
            Backend::Epoll => 1.0,
        });

        let shutdown = Arc::new(AtomicBool::new(false));
        let active_connections = Arc::new(AtomicUsize::new(0));

        let mut senders = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for w in 0..config.shards {
            let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_depth);
            senders.push(tx);
            let worker_cfg = config.clone();
            let worker_metrics = metrics.clone();
            workers.push(
                thread::Builder::new()
                    .name(format!("serve-shard-{w}"))
                    .spawn(move || shard_worker(&rx, &worker_cfg, &worker_metrics))
                    .map_err(|e| Error::server(ServerKind::Spawn, "spawn worker", e.to_string()))?,
            );
        }

        #[cfg(target_os = "linux")]
        let mut reactors = Vec::new();
        let dispatch = match config.backend {
            Backend::Threads => Dispatch::Threads,
            Backend::Epoll => {
                #[cfg(target_os = "linux")]
                {
                    let mut intakes = Vec::with_capacity(config.io_threads);
                    for r in 0..config.io_threads {
                        let handle = crate::reactor::spawn_reactor(
                            r,
                            senders.clone(),
                            config.idle_timeout,
                            metrics.clone(),
                            shutdown.clone(),
                            active_connections.clone(),
                        )?;
                        intakes.push((handle.intake.clone(), handle.waker.clone()));
                        reactors.push(handle);
                    }
                    Dispatch::Reactors { intakes, next: 0 }
                }
                #[cfg(not(target_os = "linux"))]
                unreachable!("rejected above")
            }
        };

        let accept = {
            let shutdown = shutdown.clone();
            let active = active_connections.clone();
            let metrics = metrics.clone();
            let idle_timeout = config.idle_timeout;
            let max_connections = config.max_connections;
            thread::Builder::new()
                .name("serve-accept".to_string())
                .spawn(move || {
                    accept_loop(
                        &listener,
                        senders,
                        dispatch,
                        &shutdown,
                        &active,
                        &metrics,
                        idle_timeout,
                        max_connections,
                    );
                })
                .map_err(|e| Error::server(ServerKind::Spawn, "spawn accept", e.to_string()))?
        };

        Ok(Server {
            local_addr,
            backend: config.backend,
            shutdown,
            active_connections,
            accept: Some(accept),
            workers,
            #[cfg(target_os = "linux")]
            reactors,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The backend this server runs.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Begins a clean drain: stop accepting, stop ingesting frames,
    /// let workers empty their queues, flush pending responses.
    /// Returns immediately; call [`Server::join`] to wait.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        #[cfg(target_os = "linux")]
        for r in &self.reactors {
            r.waker.wake();
        }
    }

    /// Waits until the drain completes: the accept loop, every
    /// connection (or reactor) and every shard worker has exited.
    ///
    /// # Errors
    ///
    /// [`Error::Server`] if a server thread panicked.
    pub fn join(mut self) -> Result<()> {
        let join_err = |what: &'static str| {
            Error::server(ServerKind::Join, "join", format!("{what} panicked"))
        };
        if let Some(handle) = self.accept.take() {
            handle.join().map_err(|_| join_err("accept thread"))?;
        }
        #[cfg(target_os = "linux")]
        for r in self.reactors.drain(..) {
            r.waker.wake();
            r.thread.join().map_err(|_| join_err("reactor thread"))?;
        }
        // Thread backend: the accept thread held the master queue
        // senders; with it gone, workers exit once the per-connection
        // senders drop too.
        while self.active_connections.load(Ordering::SeqCst) > 0 {
            thread::sleep(Duration::from_millis(5));
        }
        for handle in self.workers.drain(..) {
            handle.join().map_err(|_| join_err("shard worker"))?;
        }
        Ok(())
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: &TcpListener,
    senders: Vec<SyncSender<Job>>,
    mut dispatch: Dispatch,
    shutdown: &Arc<AtomicBool>,
    active: &Arc<AtomicUsize>,
    metrics: &Metrics,
    idle_timeout: Duration,
    max_connections: usize,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if active.load(Ordering::SeqCst) >= max_connections {
                    // Cap reached: close immediately. The client sees
                    // EOF on its first read — cheap and unambiguous.
                    metrics.connections_rejected.inc();
                    drop(stream);
                    continue;
                }
                // Decisions are small and latency-sensitive; Nagle +
                // delayed-ACK stalls them by ~40 ms otherwise.
                let _ = stream.set_nodelay(true);
                metrics.connections.inc();
                active.fetch_add(1, Ordering::SeqCst);
                metrics
                    .connections_active
                    .set(active.load(Ordering::SeqCst) as f64);
                match &mut dispatch {
                    Dispatch::Threads => spawn_connection(
                        stream,
                        senders.clone(),
                        shutdown.clone(),
                        active.clone(),
                        metrics.clone(),
                        idle_timeout,
                    ),
                    #[cfg(target_os = "linux")]
                    Dispatch::Reactors { intakes, next } => {
                        let (intake, waker) = &intakes[*next % intakes.len()];
                        *next = next.wrapping_add(1);
                        if let Ok(mut q) = intake.lock() {
                            q.push(stream);
                        }
                        waker.wake();
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(_) => thread::sleep(POLL),
        }
    }
    // Dropping `senders` (owned by this function) releases the master
    // queue handles; workers drain and exit once connections close.
}

fn spawn_connection(
    stream: TcpStream,
    senders: Vec<SyncSender<Job>>,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    metrics: Metrics,
    idle_timeout: Duration,
) {
    let active_in_thread = active.clone();
    let spawned = thread::Builder::new()
        .name("serve-conn".to_string())
        .spawn(move || {
            connection(stream, &senders, &shutdown, &metrics, idle_timeout);
            active_in_thread.fetch_sub(1, Ordering::SeqCst);
            metrics
                .connections_active
                .set(active_in_thread.load(Ordering::SeqCst) as f64);
        });
    if spawned.is_err() {
        // Thread spawn failed: the connection is dropped on the floor;
        // undo the count so `Server::join` doesn't wait forever.
        active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Reads frames off one connection and routes them; responses flow back
/// through a dedicated writer thread so a slow client never blocks a
/// shard worker.
fn connection(
    stream: TcpStream,
    senders: &[SyncSender<Job>],
    shutdown: &Arc<AtomicBool>,
    metrics: &Metrics,
    idle_timeout: Duration,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let (reply_tx, reply_rx) = mpsc::channel::<Response>();
    let writer = thread::Builder::new()
        .name("serve-conn-writer".to_string())
        .spawn(move || response_writer(write_half, &reply_rx));
    let Ok(writer) = writer else { return };

    let sink = ReplySink::Channel(reply_tx.clone());
    let mut last_frame = Instant::now();
    let mut read_half = stream;
    loop {
        match protocol::read_frame(&mut read_half) {
            Ok(Incoming::Idle) => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if last_frame.elapsed() > idle_timeout {
                    metrics.idle_reaped.inc();
                    break;
                }
            }
            Ok(Incoming::Closed) => break,
            Ok(Incoming::Frame(body)) => {
                last_frame = Instant::now();
                route_frame(&body, senders, metrics, &sink);
            }
            // Framing is broken (truncation, oversize, hard I/O error):
            // nothing sensible can follow on this byte stream.
            Err(_) => break,
        }
    }
    // Drop our reply sender; the writer drains what the workers still
    // send for in-flight jobs and exits when the last clone goes.
    drop(sink);
    drop(reply_tx);
    let _ = writer.join();
}

fn response_writer(mut stream: TcpStream, replies: &Receiver<Response>) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    // Blocks until every sender (reader + in-flight jobs) is gone, so a
    // drain flushes all pending decisions before the writer exits.
    while let Ok(resp) = replies.recv() {
        let Ok(body) = protocol::encode_response(&resp) else {
            continue;
        };
        if protocol::write_frame(&mut stream, &body).is_err() {
            // Client gone: keep draining the channel so workers never
            // see a send-side panic, but stop touching the socket.
            while replies.recv().is_ok() {}
            return;
        }
    }
}

/// Builds one boxed controller instance from the shared recipe.
fn build_controller(spec: &ControllerSpec) -> Result<Box<dyn Controller + Send>> {
    Ok(match spec.build()? {
        engine::BuiltController::Simple(c) => c,
        engine::BuiltController::Resilient(r) => r,
    })
}

/// One shard worker: owns the control loops of every die id mapped to
/// it and processes its queue in tick batches.
fn shard_worker(rx: &Receiver<Job>, config: &ServeConfig, metrics: &Metrics) {
    let mut loops: HashMap<u32, OnlineController<Box<dyn Controller + Send>>> = HashMap::new();
    let mut batch: Vec<Job> = Vec::new();
    loop {
        // Block for the first job of a tick, then drain whatever else
        // is already queued (bounded, so the response path stays live).
        match rx.recv_timeout(POLL) {
            Ok(job) => batch.push(job),
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
        while batch.len() < MAX_TICK_BATCH {
            match rx.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        metrics.batch.observe(batch.len() as f64);
        for job in batch.drain(..) {
            let die = job.frame.shard;
            let online = match loops.entry(die) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let Ok(controller) = build_controller(&config.controller) else {
                        // Validated in `Server::bind`; per-die failure
                        // here means the spec regressed — reject.
                        metrics.rejected.inc();
                        job.reply.send(Response::Rejected {
                            shard: die,
                            seq: job.frame.seq,
                            reason: "controller construction failed".to_string(),
                        });
                        continue;
                    };
                    let built = OnlineController::new(controller, config.vf.clone())
                        .and_then(|o| o.start(config.start_idx))
                        .map(|o| o.sensor(config.sensor_idx));
                    match built {
                        Ok(o) => e.insert(o),
                        Err(_) => {
                            metrics.rejected.inc();
                            job.reply.send(Response::Rejected {
                                shard: die,
                                seq: job.frame.seq,
                                reason: "control loop construction failed".to_string(),
                            });
                            continue;
                        }
                    }
                }
            };
            metrics.frames.inc();
            if let Some(decision) = online.observe(&job.frame) {
                metrics.decisions.inc();
                job.reply.send(Response::Decision {
                    shard: die,
                    seq: job.frame.seq,
                    decision,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_rejects_out_of_range_values() {
        assert!(ServeConfig::builder().shards(0).build().is_err());
        assert!(ServeConfig::builder().queue_depth(0).build().is_err());
        assert!(ServeConfig::builder().io_threads(0).build().is_err());
        assert!(ServeConfig::builder().max_connections(0).build().is_err());
        assert!(ServeConfig::builder()
            .idle_timeout(Duration::ZERO)
            .build()
            .is_err());
        assert!(ServeConfig::builder()
            .start_idx(usize::MAX)
            .build()
            .is_err());
    }

    #[test]
    fn builder_defaults_are_the_paper_setup() {
        let c = ServeConfig::default();
        assert_eq!(c.backend(), Backend::Threads);
        assert_eq!(c.shards(), 2);
        assert_eq!(c.queue_depth(), 64);
        assert_eq!(c.io_threads(), 1);
        assert_eq!(c.max_connections(), 1024);
        assert_eq!(c.idle_timeout(), Duration::from_secs(60));
        assert_eq!(c.start_idx, VfTable::BASELINE_INDEX);
    }

    #[test]
    fn backend_parses_its_flag_spellings() {
        assert_eq!("threads".parse::<Backend>().unwrap(), Backend::Threads);
        assert_eq!("epoll".parse::<Backend>().unwrap(), Backend::Epoll);
        assert_eq!(Backend::Epoll.to_string(), "epoll");
        assert!("tokio".parse::<Backend>().is_err());
    }
}
