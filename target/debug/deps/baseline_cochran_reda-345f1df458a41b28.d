/root/repo/target/debug/deps/baseline_cochran_reda-345f1df458a41b28.d: crates/bench/src/bin/baseline_cochran_reda.rs

/root/repo/target/debug/deps/baseline_cochran_reda-345f1df458a41b28: crates/bench/src/bin/baseline_cochran_reda.rs

crates/bench/src/bin/baseline_cochran_reda.rs:
