//! The VF oracle (§III-B) and the Fig. 2 sweep table it is derived from.

use crate::vf::VfTable;
use common::{Error, Result};
use hotgauge::Pipeline;
use serde::{Deserialize, Serialize};
use workloads::WorkloadSpec;

/// Peak (unclamped) severity of every workload at every VF point — the
/// data behind Fig. 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepTable {
    workloads: Vec<String>,
    /// `peaks[w][i]` = peak raw severity of workload `w` at VF index `i`.
    peaks: Vec<Vec<f64>>,
    vf: VfTable,
}

impl SweepTable {
    /// Measures the table by running every workload for `steps` steps at
    /// every VF point.
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors.
    pub fn measure(
        pipeline: &Pipeline,
        workloads: &[WorkloadSpec],
        vf: &VfTable,
        steps: usize,
    ) -> Result<SweepTable> {
        let mut peaks = Vec::with_capacity(workloads.len());
        for w in workloads {
            let mut row = Vec::with_capacity(vf.len());
            for p in vf.points() {
                let out = pipeline.run_fixed(w, p.frequency, p.voltage, steps)?;
                row.push(out.peak_severity_raw);
            }
            peaks.push(row);
        }
        Ok(SweepTable {
            workloads: workloads.iter().map(|w| w.name.clone()).collect(),
            peaks,
            vf: vf.clone(),
        })
    }

    /// Builds a table from precomputed peaks (row order = workload
    /// order).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if the peak matrix does not match
    /// the workload / VF counts.
    pub fn from_peaks(
        workloads: Vec<String>,
        peaks: Vec<Vec<f64>>,
        vf: VfTable,
    ) -> Result<SweepTable> {
        if peaks.len() != workloads.len() {
            return Err(Error::ShapeMismatch {
                what: "sweep table rows",
                expected: workloads.len(),
                actual: peaks.len(),
            });
        }
        for row in &peaks {
            if row.len() != vf.len() {
                return Err(Error::ShapeMismatch {
                    what: "sweep table columns",
                    expected: vf.len(),
                    actual: row.len(),
                });
            }
        }
        Ok(SweepTable {
            workloads,
            peaks,
            vf,
        })
    }

    /// The VF table the sweep used.
    pub fn vf(&self) -> &VfTable {
        &self.vf
    }

    /// Workload names, in row order.
    pub fn workloads(&self) -> &[String] {
        &self.workloads
    }

    /// Peak raw severity of a workload at a VF index.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] for unknown workloads.
    pub fn peak(&self, workload: &str, vf_idx: usize) -> Result<f64> {
        let w = self
            .workloads
            .iter()
            .position(|n| n == workload)
            .ok_or_else(|| Error::not_found("workload", workload))?;
        Ok(self.peaks[w][vf_idx])
    }

    /// The oracle VF index of a workload: the highest index whose peak
    /// severity stays below 1.0.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] for unknown workloads, or
    /// [`Error::Numerical`] if no point is safe (cannot happen with the
    /// calibrated suite, whose lowest point is always safe).
    pub fn oracle_index(&self, workload: &str) -> Result<usize> {
        let w = self
            .workloads
            .iter()
            .position(|n| n == workload)
            .ok_or_else(|| Error::not_found("workload", workload))?;
        self.peaks[w]
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &s)| s < 1.0)
            .map(|(i, _)| i)
            .ok_or_else(|| Error::Numerical(format!("no safe VF point for {workload}")))
    }

    /// The globally safe VF index: the highest index safe for **every**
    /// workload in the table (§III-C; 3.75 GHz in the paper).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Numerical`] if no point is globally safe.
    pub fn global_safe_index(&self) -> Result<usize> {
        'outer: for i in (0..self.vf.len()).rev() {
            for row in &self.peaks {
                if row[i] >= 1.0 {
                    continue 'outer;
                }
            }
            return Ok(i);
        }
        Err(Error::Numerical("no globally safe VF point".into()))
    }
}

/// Convenience: oracle frequency (GHz) per workload name.
///
/// # Errors
///
/// Propagates [`SweepTable::oracle_index`] errors.
pub fn oracle_frequencies(table: &SweepTable) -> Result<Vec<(String, f64)>> {
    table
        .workloads()
        .iter()
        .map(|w| {
            let idx = table.oracle_index(w)?;
            Ok((w.clone(), table.vf().point(idx).frequency.value()))
        })
        .collect()
}

/// The oracle controller (§III-B): perfect knowledge, fixed at the
/// workload's oracle VF point for the whole trace.
#[derive(Debug, Clone)]
pub struct OracleController {
    idx: usize,
    name: String,
}

impl OracleController {
    /// Builds the oracle for one workload from sweep data.
    ///
    /// # Errors
    ///
    /// Propagates [`SweepTable::oracle_index`] errors.
    pub fn for_workload(table: &SweepTable, workload: &str) -> Result<OracleController> {
        Ok(OracleController {
            idx: table.oracle_index(workload)?,
            name: format!("oracle({workload})"),
        })
    }

    /// The fixed VF index this oracle selects.
    pub fn vf_index(&self) -> usize {
        self.idx
    }

    /// The controller's display name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SweepTable {
        // 3 VF points; w0 safe up to idx 1, w1 only idx 0, w2 all safe.
        let vf = VfTable::new(
            [(2.0, 0.6), (3.0, 0.8), (4.0, 1.0)]
                .iter()
                .map(|&(f, v)| crate::vf::VfPoint {
                    frequency: common::units::GigaHertz::new(f),
                    voltage: common::units::Volts::new(v),
                })
                .collect(),
        )
        .unwrap();
        SweepTable::from_peaks(
            vec!["w0".into(), "w1".into(), "w2".into()],
            vec![
                vec![0.5, 0.9, 1.2],
                vec![0.7, 1.1, 1.5],
                vec![0.3, 0.5, 0.8],
            ],
            vf,
        )
        .unwrap()
    }

    #[test]
    fn oracle_picks_highest_safe_point() {
        let t = table();
        assert_eq!(t.oracle_index("w0").unwrap(), 1);
        assert_eq!(t.oracle_index("w1").unwrap(), 0);
        assert_eq!(t.oracle_index("w2").unwrap(), 2);
    }

    #[test]
    fn global_safe_is_min_of_oracles() {
        assert_eq!(table().global_safe_index().unwrap(), 0);
    }

    #[test]
    fn oracle_frequencies_lists_all() {
        let freqs = oracle_frequencies(&table()).unwrap();
        assert_eq!(freqs.len(), 3);
        assert_eq!(freqs[0], ("w0".into(), 3.0));
    }

    #[test]
    fn unknown_workload_errors() {
        assert!(table().oracle_index("nope").is_err());
        assert!(table().peak("nope", 0).is_err());
    }

    #[test]
    fn no_safe_point_is_an_error() {
        let vf = VfTable::paper();
        let peaks = vec![vec![2.0; vf.len()]];
        let t = SweepTable::from_peaks(vec!["hot".into()], peaks, vf).unwrap();
        assert!(t.oracle_index("hot").is_err());
        assert!(t.global_safe_index().is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let vf = VfTable::paper();
        assert!(SweepTable::from_peaks(vec!["a".into()], vec![], vf.clone()).is_err());
        assert!(SweepTable::from_peaks(vec!["a".into()], vec![vec![0.1]], vf).is_err());
    }

    #[test]
    fn controller_reports_fixed_index() {
        let t = table();
        let c = OracleController::for_workload(&t, "w0").unwrap();
        assert_eq!(c.vf_index(), 1);
        assert!(c.name().contains("w0"));
    }
}
