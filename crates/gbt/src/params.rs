//! GBT hyper-parameters.

use common::{Error, Result};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the boosted ensemble.
///
/// Defaults are the paper's final configuration (Table II): `α = 0.3`,
/// `γ = 0`, `max_depth = 3`, `n_estimators = 223`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbtParams {
    /// Learning rate `α`: shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Minimum loss reduction `γ` required to make a split.
    pub gamma: f64,
    /// L2 regularisation `λ` on leaf weights.
    pub lambda: f64,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Number of boosted trees.
    pub n_estimators: usize,
    /// Minimum hessian sum (= row count for squared loss) in a child.
    pub min_child_weight: f64,
    /// Maximum feature bins for the histogram trainer (2..=256). The
    /// exact-greedy reference ignores it. Defaults for deserialisation
    /// so models saved before binning existed still load.
    #[serde(default = "default_max_bins")]
    pub max_bins: usize,
}

fn default_max_bins() -> usize {
    256
}

impl Default for GbtParams {
    fn default() -> Self {
        Self {
            learning_rate: 0.3,
            gamma: 0.0,
            lambda: 1.0,
            max_depth: 3,
            n_estimators: 223,
            min_child_weight: 1.0,
            max_bins: default_max_bins(),
        }
    }
}

impl GbtParams {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for out-of-range values.
    pub fn validate(&self) -> Result<()> {
        if !(self.learning_rate.is_finite()
            && self.learning_rate > 0.0
            && self.learning_rate <= 1.0)
        {
            return Err(Error::invalid_config(
                "gbt",
                "learning_rate must be in (0, 1]",
            ));
        }
        if !(self.gamma.is_finite() && self.gamma >= 0.0) {
            return Err(Error::invalid_config("gbt", "gamma must be >= 0"));
        }
        if !(self.lambda.is_finite() && self.lambda >= 0.0) {
            return Err(Error::invalid_config("gbt", "lambda must be >= 0"));
        }
        if self.max_depth == 0 || self.max_depth > 16 {
            return Err(Error::invalid_config("gbt", "max_depth must be in 1..=16"));
        }
        if self.n_estimators == 0 {
            return Err(Error::invalid_config("gbt", "n_estimators must be >= 1"));
        }
        if !(self.min_child_weight.is_finite() && self.min_child_weight >= 0.0) {
            return Err(Error::invalid_config(
                "gbt",
                "min_child_weight must be >= 0",
            ));
        }
        if !(2..=256).contains(&self.max_bins) {
            return Err(Error::invalid_config("gbt", "max_bins must be in 2..=256"));
        }
        Ok(())
    }

    /// Builder-style setter for the tree count.
    #[must_use]
    pub fn with_estimators(mut self, n: usize) -> Self {
        self.n_estimators = n;
        self
    }

    /// Builder-style setter for the depth.
    #[must_use]
    pub fn with_depth(mut self, d: usize) -> Self {
        self.max_depth = d;
        self
    }

    /// Builder-style setter for the learning rate.
    #[must_use]
    pub fn with_learning_rate(mut self, a: f64) -> Self {
        self.learning_rate = a;
        self
    }

    /// Builder-style setter for the histogram bin budget.
    #[must_use]
    pub fn with_max_bins(mut self, b: usize) -> Self {
        self.max_bins = b;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_ii() {
        let p = GbtParams::default();
        assert_eq!(p.learning_rate, 0.3);
        assert_eq!(p.gamma, 0.0);
        assert_eq!(p.max_depth, 3);
        assert_eq!(p.n_estimators, 223);
        assert_eq!(p.max_bins, 256);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn max_bins_is_validated_and_defaults_on_deserialise() {
        assert!(GbtParams::default().with_max_bins(1).validate().is_err());
        assert!(GbtParams::default().with_max_bins(257).validate().is_err());
        assert!(GbtParams::default().with_max_bins(2).validate().is_ok());
        // A params blob saved before `max_bins` existed still loads
        // (skipped under toolchains whose serde_json cannot deserialise).
        let legacy = r#"{"learning_rate":0.3,"gamma":0.0,"lambda":1.0,
            "max_depth":3,"n_estimators":223,"min_child_weight":1.0}"#;
        if let Ok(p) = serde_json::from_str::<GbtParams>(legacy) {
            assert_eq!(p.max_bins, 256);
        }
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(GbtParams::default()
            .with_learning_rate(0.0)
            .validate()
            .is_err());
        assert!(GbtParams::default()
            .with_learning_rate(1.5)
            .validate()
            .is_err());
        assert!(GbtParams::default().with_depth(0).validate().is_err());
        assert!(GbtParams::default().with_estimators(0).validate().is_err());
        let p = GbtParams {
            gamma: -1.0,
            ..GbtParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn builders_chain() {
        let p = GbtParams::default()
            .with_depth(5)
            .with_estimators(10)
            .with_learning_rate(0.1);
        assert_eq!(p.max_depth, 5);
        assert_eq!(p.n_estimators, 10);
        assert_eq!(p.learning_rate, 0.1);
    }
}
