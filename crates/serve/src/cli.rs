//! The shared flag parser behind `boreas_serve` and `boreas_loadgen`.
//!
//! Both serving binaries declare their surface as a [`Spec`] — a name,
//! an about line and a list of [`Flag`]s — and call [`Spec::parse`] on
//! the process arguments. The parser follows the same conventions as
//! `boreas_bench::Reporting` so every binary in the workspace feels
//! identical:
//!
//! * value flags accept both spellings, `--flag value` and
//!   `--flag=value`;
//! * `--help`/`-h` prints a generated usage page and exits the process
//!   with status 0;
//! * an unknown flag, or a value flag with no value, is an error (not
//!   silently ignored) that points at `--help`.
//!
//! Parsed values come back as a [`Args`] keyed by flag name, with
//! typed access through [`Args::parsed`].

use std::collections::HashMap;

use common::{Error, Result};

/// One declared flag.
#[derive(Debug, Clone)]
pub struct Flag {
    name: &'static str,
    value_name: Option<&'static str>,
    help: &'static str,
    default: Option<&'static str>,
}

/// A binary's declared CLI surface.
#[derive(Debug, Clone)]
pub struct Spec {
    name: &'static str,
    about: &'static str,
    flags: Vec<Flag>,
}

impl Spec {
    /// Starts a spec for the binary `name` with a one-line `about`.
    pub fn new(name: &'static str, about: &'static str) -> Spec {
        Spec {
            name,
            about,
            flags: Vec::new(),
        }
    }

    /// Declares `--name <value_name>`; `default` is shown in the usage
    /// page and returned by [`Args::get`] when the flag is absent.
    #[must_use]
    pub fn value_flag(
        mut self,
        name: &'static str,
        value_name: &'static str,
        default: Option<&'static str>,
        help: &'static str,
    ) -> Spec {
        self.flags.push(Flag {
            name,
            value_name: Some(value_name),
            help,
            default,
        });
        self
    }

    /// Declares a boolean `--name` switch.
    #[must_use]
    pub fn switch(mut self, name: &'static str, help: &'static str) -> Spec {
        self.flags.push(Flag {
            name,
            value_name: None,
            help,
            default: None,
        });
        self
    }

    /// The generated usage page.
    pub fn usage(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{} — {}\n\n", self.name, self.about));
        out.push_str(&format!("usage: {} [flags]\n\nflags:\n", self.name));
        let mut lefts = Vec::with_capacity(self.flags.len() + 1);
        for f in &self.flags {
            lefts.push(match f.value_name {
                Some(v) => format!("--{} <{v}>", f.name),
                None => format!("--{}", f.name),
            });
        }
        lefts.push("--help".to_string());
        let width = lefts.iter().map(String::len).max().unwrap_or(0);
        for (f, left) in self.flags.iter().zip(&lefts) {
            out.push_str(&format!("  {left:width$}  {}", f.help));
            if let Some(d) = f.default {
                out.push_str(&format!(" [default: {d}]"));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "  {:width$}  print this help and exit\n",
            "--help"
        ));
        out
    }

    /// Parses the process arguments (skipping `argv[0]`); prints the
    /// usage page and exits 0 on `--help`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for an unknown flag, a value flag
    /// missing its value, or a positional argument.
    pub fn parse_env(&self) -> Result<Args> {
        let args = self.parse(std::env::args().skip(1))?;
        if args.help {
            print!("{}", self.usage());
            std::process::exit(0);
        }
        Ok(args)
    }

    /// Parses an explicit argument list (testable; `--help` sets
    /// [`Args::help`] instead of exiting).
    pub fn parse(&self, args: impl IntoIterator<Item = String>) -> Result<Args> {
        let mut values: HashMap<&'static str, String> = HashMap::new();
        let mut switches: Vec<&'static str> = Vec::new();
        let mut help = false;
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            if arg == "--help" || arg == "-h" {
                help = true;
                continue;
            }
            let Some(body) = arg.strip_prefix("--") else {
                return Err(self.unknown(&arg));
            };
            let (name, inline) = match body.split_once('=') {
                Some((n, v)) => (n, Some(v.to_string())),
                None => (body, None),
            };
            let Some(flag) = self.flags.iter().find(|f| f.name == name) else {
                return Err(self.unknown(&arg));
            };
            if flag.value_name.is_some() {
                let value = match inline {
                    Some(v) => v,
                    None => it.next().ok_or_else(|| {
                        Error::invalid_config(
                            "cli",
                            format!("--{} needs a value (see {} --help)", flag.name, self.name),
                        )
                    })?,
                };
                values.insert(flag.name, value);
            } else {
                if inline.is_some() {
                    return Err(Error::invalid_config(
                        "cli",
                        format!("--{} takes no value (see {} --help)", flag.name, self.name),
                    ));
                }
                switches.push(flag.name);
            }
        }
        let defaults = self
            .flags
            .iter()
            .filter_map(|f| f.default.map(|d| (f.name, d)))
            .collect();
        Ok(Args {
            values,
            switches,
            defaults,
            help,
        })
    }

    fn unknown(&self, arg: &str) -> Error {
        Error::invalid_config(
            "cli",
            format!("unknown argument `{arg}` (see {} --help)", self.name),
        )
    }
}

/// Parsed arguments; see [`Spec::parse`].
#[derive(Debug)]
pub struct Args {
    values: HashMap<&'static str, String>,
    switches: Vec<&'static str>,
    defaults: HashMap<&'static str, &'static str>,
    /// `--help` was present (only observable via [`Spec::parse`]; the
    /// `parse_env` path prints usage and exits first).
    pub help: bool,
}

impl Args {
    /// The flag's value, falling back to its declared default.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values
            .get(name)
            .map(String::as_str)
            .or_else(|| self.defaults.get(name).copied())
    }

    /// Whether a switch was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.contains(&name)
    }

    /// The flag's value parsed as `T`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when the value does not parse; absent
    /// flags (with no default) return `Ok(None)`.
    pub fn parsed<T>(&self, name: &'static str) -> Result<Option<T>>
    where
        T: std::str::FromStr,
        T::Err: std::fmt::Display,
    {
        match self.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<T>()
                .map(Some)
                .map_err(|e| Error::invalid_config("cli", format!("--{name} `{raw}`: {e}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> Spec {
        Spec::new("boreas_x", "test binary")
            .value_flag("addr", "host:port", Some("127.0.0.1:0"), "bind address")
            .value_flag("shards", "n", Some("2"), "worker count")
            .switch("smoke", "tiny run")
    }

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn both_value_spellings_parse() {
        let a = spec().parse(argv(&["--shards", "4", "--smoke"])).unwrap();
        assert_eq!(a.parsed::<usize>("shards").unwrap(), Some(4));
        assert!(a.has("smoke"));
        let a = spec().parse(argv(&["--shards=8"])).unwrap();
        assert_eq!(a.parsed::<usize>("shards").unwrap(), Some(8));
        assert!(!a.has("smoke"));
    }

    #[test]
    fn defaults_fill_absent_flags() {
        let a = spec().parse(argv(&[])).unwrap();
        assert_eq!(a.get("addr"), Some("127.0.0.1:0"));
        assert_eq!(a.parsed::<usize>("shards").unwrap(), Some(2));
    }

    #[test]
    fn unknown_and_malformed_flags_error() {
        assert!(spec().parse(argv(&["--nope"])).is_err());
        assert!(spec().parse(argv(&["positional"])).is_err());
        assert!(spec().parse(argv(&["--shards"])).is_err());
        assert!(spec().parse(argv(&["--smoke=1"])).is_err());
        let e = spec().parse(argv(&["--nope"])).unwrap_err().to_string();
        assert!(e.contains("--help"), "{e}");
    }

    #[test]
    fn help_flag_is_latched_and_usage_lists_flags() {
        let a = spec().parse(argv(&["--help"])).unwrap();
        assert!(a.help);
        let u = spec().usage();
        assert!(u.contains("--addr <host:port>"));
        assert!(u.contains("[default: 2]"));
        assert!(u.contains("--help"));
    }
}
